"""Bank row-buffer state machine.

Each :class:`Bank` tracks the currently open row, when it was activated
(to honour ``tRAS`` before a conflicting precharge), and when the bank
is next free.  The three classic row-buffer outcomes are modelled:

* **hit** — requested row is open: pay ``tCAS``.
* **closed** — no row open (first touch): pay ``tRCD + tCAS``.
* **conflict** — a different row is open: wait out ``tRAS`` if needed,
  then pay ``tRP + tRCD + tCAS``.

The bank never consults wall-clock state outside what the controller
passes in, which keeps it unit-testable in isolation.

:meth:`Bank.access` is inlined by the controller's columnar datapath
(``ChannelController.enqueue_batch``), so it is fingerprinted in the
kernel manifest: edits here fail ``repro lint`` until the batch path is
re-proven bit-identical and the change acknowledged with ``repro lint
--update-manifest``.
"""

from __future__ import annotations

from .timing import DramTiming

# Row-buffer outcomes (ints: hot path).
ROW_HIT = 0
ROW_CLOSED = 1
ROW_CONFLICT = 2

OUTCOME_NAMES = {ROW_HIT: "hit", ROW_CLOSED: "closed", ROW_CONFLICT: "conflict"}


class Bank:
    """One DRAM bank: open-row register plus availability bookkeeping."""

    __slots__ = ("open_row", "busy_until_ps", "activated_ps", "hits", "misses", "conflicts")

    def __init__(self) -> None:
        self.open_row: int = -1  # -1 means precharged / no open row
        self.busy_until_ps: int = 0
        self.activated_ps: int = 0
        self.hits: int = 0
        self.misses: int = 0
        self.conflicts: int = 0

    def access(self, row: int, at_ps: int, timing: DramTiming, burst_ps: int) -> "tuple[int, int]":
        """Perform a column access to ``row`` no earlier than ``at_ps``.

        Returns ``(data_ready_ps, outcome)`` where ``data_ready_ps`` is
        when the column data is available on the bank's internal bus
        (the controller then schedules the channel burst) and
        ``outcome`` is one of :data:`ROW_HIT`, :data:`ROW_CLOSED`,
        :data:`ROW_CONFLICT`.

        Column commands *pipeline*: the bank can accept its next CAS
        one burst time (~tCCD) after the previous one issued, not after
        the previous data finished transferring — so back-to-back row
        hits stream at full bus rate.  ``busy_until_ps`` therefore
        advances to ``cas_issue + burst_ps``, while ``data_ready_ps``
        still reflects the full access latency.
        """
        start = at_ps if at_ps > self.busy_until_ps else self.busy_until_ps
        if self.open_row == row:
            self.hits += 1
            outcome = ROW_HIT
            cas_issue = start
        elif self.open_row == -1:
            self.misses += 1
            outcome = ROW_CLOSED
            self.activated_ps = start
            self.open_row = row
            cas_issue = start + timing.trcd_ps
        else:
            self.conflicts += 1
            outcome = ROW_CONFLICT
            # A precharge may not begin before the open row has been
            # active for tRAS.
            earliest_pre = self.activated_ps + timing.tras_ps
            pre_start = start if start > earliest_pre else earliest_pre
            act_start = pre_start + timing.trp_ps
            self.activated_ps = act_start
            self.open_row = row
            cas_issue = act_start + timing.trcd_ps
        ready = cas_issue + timing.tcas_ps
        self.busy_until_ps = cas_issue + burst_ps
        return ready, outcome

    @property
    def total_accesses(self) -> int:
        """Number of column accesses this bank has served."""
        return self.hits + self.misses + self.conflicts

    def reset(self) -> None:
        """Return the bank to the precharged state and clear statistics."""
        self.open_row = -1
        self.busy_until_ps = 0
        self.activated_ps = 0
        self.hits = 0
        self.misses = 0
        self.conflicts = 0
