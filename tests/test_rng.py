"""Deterministic RNG: reproducibility, independence, zipf correctness."""

import pytest

from repro.common.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.random() for _ in range(50)] == [b.random() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_child_streams_are_independent_of_sibling_creation(self):
        # Adding a new consumer must not perturb an existing stream.
        root1 = DeterministicRng(7)
        stream1 = root1.child("alpha")
        values1 = [stream1.random() for _ in range(20)]

        root2 = DeterministicRng(7)
        _ = root2.child("beta")  # new sibling created first
        stream2 = root2.child("alpha")
        values2 = [stream2.random() for _ in range(20)]
        assert values1 == values2

    def test_children_with_different_labels_differ(self):
        root = DeterministicRng(7)
        a = root.child("a")
        b = root.child("b")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_nested_children(self):
        root = DeterministicRng(7)
        nested = root.child("x").child("y")
        again = DeterministicRng(7).child("x").child("y")
        assert nested.random() == again.random()


class TestDraws:
    def test_randint_bounds(self):
        rng = DeterministicRng(3)
        values = [rng.randint(2, 5) for _ in range(200)]
        assert set(values) <= {2, 3, 4, 5}
        assert set(values) == {2, 3, 4, 5}  # all values reachable

    def test_randrange_bounds(self):
        rng = DeterministicRng(3)
        assert all(0 <= rng.randrange(8) < 8 for _ in range(200))

    def test_choice_and_sample(self):
        rng = DeterministicRng(3)
        pool = list(range(10))
        assert rng.choice(pool) in pool
        sample = rng.sample(pool, 4)
        assert len(sample) == 4
        assert len(set(sample)) == 4

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(3)
        items = list(range(32))
        shuffled = items[:]
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_expovariate_positive(self):
        rng = DeterministicRng(3)
        assert all(rng.expovariate(1.0) >= 0 for _ in range(100))


class TestZipf:
    def test_zipf_in_range(self):
        rng = DeterministicRng(11)
        assert all(0 <= rng.zipf_index(100, 1.1) < 100 for _ in range(500))

    def test_zipf_rank_zero_most_popular(self):
        rng = DeterministicRng(11)
        counts = [0] * 50
        for _ in range(20000):
            counts[rng.zipf_index(50, 1.2)] += 1
        # Rank 0 clearly beats rank 10 and rank 40 under alpha=1.2.
        assert counts[0] > counts[10] > counts[40]

    def test_zipf_head_share_matches_theory(self):
        rng = DeterministicRng(11)
        n, alpha, draws = 100, 1.0, 30000
        hits = sum(1 for _ in range(draws) if rng.zipf_index(n, alpha) == 0)
        harmonic = sum(1.0 / (i + 1) ** alpha for i in range(n))
        expected = draws / harmonic
        assert hits == pytest.approx(expected, rel=0.15)

    def test_single_element(self):
        rng = DeterministicRng(11)
        assert rng.zipf_index(1, 1.5) == 0
