"""System layer: hybrid memory, metadata caches, simulator, statistics.

The simulator submodule is re-exported lazily (PEP 562): it imports the
manager implementations, which in turn import this package's substrate
modules, so an eager import here would create a cycle.
"""

from .cache import MetadataCache
from .energy import EnergyModel, EnergyParams, EnergyReport, report_for
from .hybrid import HybridMemory, SingleLevelMemory, build_device
from .stats import (
    SimulationResult,
    arithmetic_mean,
    collect_result,
    geometric_mean,
)

_SIMULATOR_NAMES = {"MANAGER_KINDS", "build_manager", "run", "simulate"}

__all__ = [
    "EnergyModel",
    "EnergyParams",
    "EnergyReport",
    "HybridMemory",
    "report_for",
    "MANAGER_KINDS",
    "MetadataCache",
    "SimulationResult",
    "SingleLevelMemory",
    "arithmetic_mean",
    "build_device",
    "build_manager",
    "collect_result",
    "geometric_mean",
    "run",
    "simulate",
]


def __getattr__(name):
    if name in _SIMULATOR_NAMES:
        from . import simulator

        return getattr(simulator, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
