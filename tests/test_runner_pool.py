"""SweepRunner: serial / parallel / cached runs must be interchangeable."""

import io

import pytest

from repro.experiments import ExperimentConfig, run_comparison
from repro.runner import (
    ProgressTracker,
    ResultCache,
    SweepRunner,
    get_default_runner,
    set_default_runner,
    sim_cell,
)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        scale=64, length=6000, seed=2, workloads=("xalanc", "cactus")
    )


def cells_for(config):
    return [
        sim_cell(config, name, kind)
        for name in config.workloads
        for kind in ("tlm", "mempod")
    ]


class TestEquivalence:
    def test_parallel_equals_serial(self, config):
        serial = SweepRunner(jobs=1, cache=None).map(cells_for(config))
        parallel = SweepRunner(jobs=2, cache=None).map(cells_for(config))
        assert serial == parallel  # result-for-result, in submission order

    def test_warm_cache_equals_cold_and_reports_hits(self, config, tmp_path):
        cold = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        first = cold.map(cells_for(config))
        assert (cold.tracker.hits, cold.tracker.misses) == (0, 4)

        warm = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        second = warm.map(cells_for(config))
        assert (warm.tracker.hits, warm.tracker.misses) == (4, 0)
        assert warm.tracker.hit_rate() == 1.0
        assert first == second

    def test_param_change_misses_the_cache(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(jobs=1, cache=cache)
        runner.run(sim_cell(config, "xalanc", "mempod"))
        runner.run(sim_cell(config, "xalanc", "mempod", mea_counters=8))
        assert runner.tracker.misses == 2

    def test_disabled_cache_writes_nothing(self, config, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        runner = SweepRunner.from_env()
        assert runner.cache is None
        runner.map(cells_for(config)[:1])
        assert list(tmp_path.iterdir()) == []


class TestDriverIntegration:
    def test_comparison_identical_across_execution_modes(self, config, tmp_path):
        serial = run_comparison(
            config, mechanisms=("mempod",),
            runner=SweepRunner(jobs=1, cache=None),
        )
        parallel = run_comparison(
            config, mechanisms=("mempod",),
            runner=SweepRunner(jobs=2, cache=ResultCache(tmp_path)),
        )
        warm_runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        warm = run_comparison(config, mechanisms=("mempod",), runner=warm_runner)

        assert warm_runner.tracker.hit_rate() == 1.0  # zero simulation work
        assert serial.normalized == parallel.normalized == warm.normalized
        assert serial.format_table() == parallel.format_table() == warm.format_table()

    def test_default_runner_is_serial_and_cache_free(self):
        runner = get_default_runner()
        assert runner.jobs >= 1
        assert runner.cache is None

    def test_set_default_runner_round_trips(self):
        replacement = SweepRunner(jobs=1, cache=None)
        previous = set_default_runner(replacement)
        try:
            assert get_default_runner() is replacement
        finally:
            set_default_runner(previous)


class TestProgressTracker:
    def test_counts_and_summary(self):
        tracker = ProgressTracker(stream=io.StringIO())
        tracker.begin(4)
        tracker.cell_done("a", hit=True, seconds=0.0)
        tracker.cell_done("b", hit=False, seconds=0.5)
        assert tracker.done == 2
        assert tracker.hit_rate() == 0.5
        assert "2/4 cells" in tracker.status_line()
        assert "hit rate 50%" in tracker.summary()

    def test_not_live_when_stream_is_not_a_tty(self):
        stream = io.StringIO()
        tracker = ProgressTracker(stream=stream)
        tracker.begin(1)
        tracker.cell_done("a", hit=False, seconds=0.1)
        tracker.finish()
        assert stream.getvalue() == ""  # piped output stays clean

    def test_spans_multiple_map_calls(self, config):
        tracker = ProgressTracker(stream=io.StringIO())
        runner = SweepRunner(jobs=1, cache=None, tracker=tracker)
        runner.map(cells_for(config)[:1])
        runner.map(cells_for(config)[:2])
        assert tracker.total == 3
        assert tracker.done == 3
