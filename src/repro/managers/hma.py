"""HMA: the HW/SW epoch-based manager (Meswani et al., HPCA 2015).

Per the paper's modelling (Sections 2, 4, 6):

* **Full Counters** — one counter per memory page, counted in hardware.
* **OS-driven migration at large intervals** — 100 ms epochs, because
  every epoch the OS must sort millions of counters and rewrite page
  tables.  The paper measured 1.2 s for a faithful sort and *granted*
  HMA a generous fixed 7 ms penalty per epoch (4.2 ms in the future-
  technology experiment).  The penalty is CPU compute; see
  ``penalty_mode`` for the two ways it can be applied.
* **No remap table** — the OS fixes page tables, so address translation
  is free at access time (the ``location`` map below is the simulated
  page table, not modelled hardware).
* **Full flexibility** — any page can go anywhere in fast memory; the
  hottest non-resident pages displace the coldest residents.

``interval_ps``/``sort_penalty_ps`` default to the paper's values;
scaled experiments pass both down proportionally (see DESIGN.md).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..common.config import (
    require_in,
    require_non_negative_int,
    require_positive_int,
)
from ..common.units import ms
from ..core.remap import PageTableRemap
from ..dram.request import BOOKKEEPING
from ..geometry import MemoryGeometry
from ..system.cache import MetadataCache
from ..system.hybrid import HybridMemory
from ..tracking.full_counters import FullCountersTracker
from .base import ComposedManager, TrackerStorage

DEFAULT_INTERVAL_PS = ms(100)
DEFAULT_SORT_PENALTY_PS = ms(7)
DEFAULT_HOT_THRESHOLD = 8
DEFAULT_MAX_MIGRATIONS = 256


class HmaManager(ComposedManager):
    """Epoch-based OS migration with full per-page counters."""

    name = "HMA"
    trigger = "epoch"
    flexibility = "global"

    def __init__(
        self,
        memory: HybridMemory,
        geometry: MemoryGeometry,
        interval_ps: int = DEFAULT_INTERVAL_PS,
        sort_penalty_ps: int = DEFAULT_SORT_PENALTY_PS,
        hot_threshold: int = DEFAULT_HOT_THRESHOLD,
        max_migrations_per_interval: int = DEFAULT_MAX_MIGRATIONS,
        counter_bits: int = 16,
        penalty_mode: str = "compute",
        cache_bytes: int = 0,
    ) -> None:
        require_positive_int("interval_ps", interval_ps)
        require_non_negative_int("sort_penalty_ps", sort_penalty_ps)
        require_positive_int("hot_threshold", hot_threshold)
        require_positive_int("max_migrations_per_interval", max_migrations_per_interval)
        require_in("penalty_mode", penalty_mode, ("compute", "stall"))
        super().__init__(memory, geometry, interval_ps=interval_ps)
        self.sort_penalty_ps = sort_penalty_ps
        self.penalty_mode = penalty_mode
        self.hot_threshold = hot_threshold
        self.max_migrations_per_interval = max_migrations_per_interval
        self.tracker = FullCountersTracker(geometry.total_pages, counter_bits=counter_bits)
        # Optional cache over the in-memory counter array (Section
        # 6.3.3): a miss injects a fill read.  Counter updates are off
        # the demand critical path, so misses add traffic but do not
        # block the triggering request.  Counters are 2 B each -> 32 per
        # cache line.
        self._cache: Optional[MetadataCache] = (
            MetadataCache(cache_bytes, entry_bytes=counter_bits // 8 or 1)
            if cache_bytes
            else None
        )
        self.counters_missed = 0
        # The simulated OS page table.  The aliases expose the policy's
        # raw dicts under the names the fast kernel and tests bind to —
        # same objects, so mutation through either view is seen by both.
        self.remap = PageTableRemap()
        self._location: Dict[int, int] = self.remap._forward
        self._resident: Dict[int, int] = self.remap._resident
        self.total_migrations = 0
        self.intervals = 0

    # -- request path ---------------------------------------------------------

    def handle(self, address: int, is_write: bool, arrival_ps: int, core: int) -> None:
        self._tick(arrival_ps)

        page = address >> self._page_shift
        self.tracker.record(page)
        if self._cache is not None and not self._cache.lookup(page):
            self.counters_missed += 1
            self._counter_fill(page, arrival_ps)
        penalty_ps = self._block_penalty_ps(page, arrival_ps)
        frame = self._location.get(page, page)
        new_address = (frame << self._page_shift) | (address & self._page_mask)
        self.memory.access(
            new_address, is_write, arrival_ps, account_ps=arrival_ps - penalty_ps
        )

    def _run_boundary(self, at_ps: int) -> None:
        """Sort penalty, then migrate hot pages in, coldest pages out.

        The penalty is CPU time spent sorting counters and rewriting
        page tables.  In ``compute`` mode (default) it delays the
        epoch's migrations — the memory devices keep serving demand
        while the cores sort, matching an AMMAT metric where lost CPU
        time is not memory stall.  In ``stall`` mode the whole memory
        system blocks for the penalty (a pessimistic bound where the
        sorting cores hold off all traffic); the fig8 ablation bench
        contrasts the two.
        """
        self._issue_due_swaps(at_ps)  # previous epoch's copies settle first
        self.intervals += 1
        migrate_at = at_ps + self.sort_penalty_ps
        if self.sort_penalty_ps and self.penalty_mode == "stall":
            self.memory.block_until(migrate_at)

        counts = self.tracker.counts()
        fast_pages = self.geometry.fast_pages
        # Hot candidates: above-threshold pages whose data is in slow memory.
        candidates = [
            (count, page)
            for page, count in counts.items()
            if count >= self.hot_threshold
            and self._location.get(page, page) >= fast_pages
        ]
        candidates.sort(key=lambda pair: (-pair[0], pair[1]))
        candidates = candidates[: self.max_migrations_per_interval]
        if candidates:
            victims = self._victim_heap(counts)
            # The OS performs the copies back to back after the sort; the
            # copies are paced at twice the pipelined swap cost so demand
            # keeps a share of the channels while the burst drains, and
            # each page keeps serving from its old location until its
            # copy starts (the page table flips per page, not per epoch).
            plans = []
            for count, page in candidates:
                if not victims:
                    break
                victim_count, _, victim_frame = heapq.heappop(victims)
                if victim_count >= count:
                    break  # every remaining resident is at least as hot
                frame = self._location.get(page, page)
                plans.append((victim_frame, frame, -1))
                self.total_migrations += 1
            self._schedule_swaps(plans, migrate_at, 2 * self.engine.page_swap_cost_ps)
        self.tracker.reset()

    def _counter_fill(self, page: int, at_ps: int) -> None:
        """Inject the backing-store read for a missed counter line."""
        assert self._cache is not None
        line = page // self._cache.entries_per_line
        store_page = line % self.geometry.fast_pages
        address = store_page * self.geometry.page_bytes + (line * 64) % self.geometry.page_bytes
        self.memory.access(address, False, at_ps, kind=BOOKKEEPING)

    def _victim_heap(self, counts: Dict[int, int]) -> List[Tuple[int, int, int]]:
        """Min-heap of (resident count, tiebreak, frame) over fast frames."""
        heap = []
        for frame in range(self.geometry.fast_pages):
            resident = self._resident.get(frame, frame)
            heap.append((counts.get(resident, 0), frame, frame))
        heapq.heapify(heap)
        return heap

    def finish(self, end_ps: int) -> int:
        """Drain the devices.

        The final partial epoch performs no migrations: with the trace
        over there is no future traffic for them to serve, and at our
        scaled trace lengths a finish-time migration burst would be pure
        accounting noise (full-length runs make it negligible instead).
        """
        return super().finish(end_ps)

    def storage_components(self):
        """No remap hardware (OS page table); full counters over every page."""
        return (self.remap, TrackerStorage(self.tracker))
