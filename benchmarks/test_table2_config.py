"""Table 2 — the simulated machine configuration.

The table is echoed from the live timing presets and geometry, so this
bench asserts the values the paper's Table 2 specifies.
"""

from conftest import emit

from repro.experiments import format_table2, table2_entries


def test_table2_config(benchmark, results_dir):
    entries = benchmark.pedantic(table2_entries, rounds=1, iterations=1)
    emit(results_dir, "table2_config", format_table2())

    hbm = entries["HBM"]
    assert hbm["Capacity"] == "1 GB"
    assert hbm["Bus Frequency"] == "1 GHz"
    assert hbm["Bus Width (bits)"] == "128"
    assert hbm["Channels"] == "8"
    assert hbm["Banks"] == "16"
    assert hbm["Row Buffer Size"] == "8 kB"
    assert hbm["tCAS-tRCD-tRP-tRAS"] == "7-7-7-17"

    ddr = entries["DDR4-1600"]
    assert ddr["Capacity"] == "8 GB"
    assert ddr["Channels"] == "4"
    assert ddr["tCAS-tRCD-tRP-tRAS"] == "11-11-11-28"
