"""Table 3 — mixed workload composition.

Asserts the roster invariants: 12 mixes, each normalised to 8 cores,
every member a known benchmark, and the paper's marquee memberships.
"""

from conftest import emit

from repro.experiments import format_table3
from repro.trace import MIX_MEMBERS, MIX_NAMES, benchmark_names, get_workload


def test_table3_mixes(benchmark, results_dir):
    text = benchmark.pedantic(format_table3, rounds=1, iterations=1)
    emit(results_dir, "table3_mixes", text)

    assert len(MIX_NAMES) == 12
    known = set(benchmark_names())
    for mix in MIX_NAMES:
        spec = get_workload(mix)
        assert spec.cores == 8
        assert set(spec.benchmark_names) <= known
        assert set(MIX_MEMBERS[mix]) <= known

    # Spot-check Table 3 memberships used elsewhere in the paper.
    assert "xalanc" in MIX_MEMBERS["mix9"]  # mix9 is a Figure 3 subject
    assert "bwaves" in MIX_MEMBERS["mix9"]
    assert MIX_MEMBERS["mix10"].count("libquantum") == 2  # double copy
