"""Trace interleaving: placement, rates, determinism, workload registry."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import DeterministicRng
from repro.geometry import scaled_geometry
from repro.trace import (
    HOMOGENEOUS_NAMES,
    MIX_NAMES,
    PagePlacer,
    WorkloadSpec,
    all_workloads,
    build_trace,
    get_workload,
    homogeneous_spec,
    mixed_spec,
    workload_names,
)


@pytest.fixture
def geometry():
    return scaled_geometry(64)


class TestPagePlacer:
    def test_binding_is_stable(self, geometry):
        placer = PagePlacer(geometry, "spread", DeterministicRng(1))
        first = placer.place(0, 7)
        assert placer.place(0, 7) == first

    def test_cores_do_not_share_pages(self, geometry):
        placer = PagePlacer(geometry, "spread", DeterministicRng(1))
        a = {placer.place(0, v) for v in range(100)}
        b = {placer.place(1, v) for v in range(100)}
        assert not a & b

    def test_spread_lands_proportionally_in_fast(self, geometry):
        placer = PagePlacer(geometry, "spread", DeterministicRng(1))
        for v in range(3000):
            placer.place(0, v)
        # Fast is 1/9 of capacity; allow generous sampling slack.
        assert 0.07 <= placer.fast_resident_fraction() <= 0.16

    def test_sequential_fills_fast_first(self, geometry):
        placer = PagePlacer(geometry, "sequential", DeterministicRng(1))
        pages = [placer.place(0, v) for v in range(10)]
        assert pages == list(range(10))
        assert placer.fast_resident_fraction() == 1.0

    def test_slow_only_avoids_fast(self, geometry):
        placer = PagePlacer(geometry, "slow_only", DeterministicRng(1))
        for v in range(100):
            assert placer.place(0, v) >= geometry.fast_pages
        assert placer.fast_resident_fraction() == 0.0

    def test_exhaustion_raises(self):
        tiny = scaled_geometry(512)  # 2 MB + 16 MB: 9216 pages
        placer = PagePlacer(tiny, "spread", DeterministicRng(1))
        with pytest.raises(SimulationError):
            for v in range(tiny.total_pages + 1):
                placer.place(0, v)

    def test_unknown_policy_rejected(self, geometry):
        with pytest.raises(ConfigError):
            PagePlacer(geometry, "bogus", DeterministicRng(1))


class TestBuildTrace:
    def test_records_are_time_ordered(self, geometry):
        trace = build_trace(get_workload("mix8"), geometry, length=5000, seed=2).trace
        arrivals = [r[0] for r in trace.records]
        assert arrivals == sorted(arrivals)

    def test_length_exact(self, geometry):
        trace = build_trace(get_workload("xalanc"), geometry, length=1234, seed=2).trace
        assert len(trace) == 1234

    def test_deterministic_across_builds(self, geometry):
        a = build_trace(get_workload("mix3"), geometry, length=3000, seed=9).trace
        b = build_trace(get_workload("mix3"), geometry, length=3000, seed=9).trace
        assert a.records == b.records

    def test_seed_changes_trace(self, geometry):
        a = build_trace(get_workload("mix3"), geometry, length=3000, seed=9).trace
        b = build_trace(get_workload("mix3"), geometry, length=3000, seed=10).trace
        assert a.records != b.records

    def test_request_rate_near_target(self, geometry):
        result = build_trace(
            get_workload("gems"), geometry, length=20_000, seed=2, requests_per_us=110.0
        )
        rate = len(result.trace) / (result.trace.duration_ps / 1e6)
        assert rate == pytest.approx(110.0, rel=0.1)

    def test_all_cores_contribute(self, geometry):
        result = build_trace(get_workload("mix1"), geometry, length=20_000, seed=2)
        assert all(count > 0 for count in result.per_core_requests)

    def test_addresses_within_flat_space(self, geometry):
        trace = build_trace(get_workload("mcf"), geometry, length=5000, seed=2).trace
        assert all(0 <= r[1] < geometry.total_bytes for r in trace.records)


class TestWorkloadRegistry:
    def test_fifteen_homogeneous(self):
        assert len(HOMOGENEOUS_NAMES) == 15

    def test_twelve_mixes(self):
        assert len(MIX_NAMES) == 12

    def test_all_workloads_is_27(self):
        assert len(all_workloads()) == 27
        assert len(workload_names()) == 27

    def test_homogeneous_spec_is_homogeneous(self):
        spec = homogeneous_spec("lbm")
        assert spec.is_homogeneous
        assert spec.cores == 8

    def test_mixes_normalised_to_8_cores(self):
        for name in MIX_NAMES:
            assert get_workload(name).cores == 8

    def test_mixed_spec_cycles_short_lists(self):
        spec = mixed_spec("tiny", ["mcf", "lbm"], cores=8)
        assert spec.benchmark_names == ("mcf", "lbm") * 4

    def test_mixed_spec_truncates_long_lists(self):
        names = ["mcf"] * 10
        assert mixed_spec("big", names).cores == 8

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            get_workload("doom")

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(name="bad", benchmark_names=("nonexistent",))
