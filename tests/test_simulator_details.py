"""Simulator internals: throttle mechanics, boundary handling, gaps."""

import pytest

from repro import build_manager, scaled_geometry, simulate
from repro.common.units import us
from repro.trace.record import Trace


@pytest.fixture(scope="module")
def geometry():
    return scaled_geometry(64)


def burst_trace(count, gap_ps, page=0, start_ps=0, name="burst"):
    """A single-page hammer trace with uniform gaps."""
    records = [
        (start_ps + i * gap_ps, page * 2048 + (i % 32) * 64, 0, 0)
        for i in range(count)
    ]
    return Trace(name=name, records=records)


class TestThrottleMechanics:
    def test_offset_shifts_saturated_stream(self, geometry):
        # A 1 ns-gap hammer on one bank saturates it; the throttle must
        # dilate time so backlog stays near the cap instead of growing
        # linearly.
        trace = burst_trace(20_000, gap_ps=1_000)
        manager = build_manager("tlm", geometry)
        result = simulate(trace, manager, throttle_cap_ps=us(1))
        # Bounded backlog implies bounded per-request latency.
        assert result.ammat_ns < 3_000

    def test_unthrottled_backlog_grows(self, geometry):
        trace = burst_trace(20_000, gap_ps=1_000)
        manager = build_manager("tlm", geometry)
        unbounded = simulate(trace, manager, throttle_cap_ps=0)
        manager2 = build_manager("tlm", geometry)
        bounded = simulate(trace, manager2, throttle_cap_ps=us(1))
        assert unbounded.ammat_ns > bounded.ammat_ns

    def test_quiet_stream_untouched(self, geometry):
        trace = burst_trace(2_000, gap_ps=1_000_000)  # 1 us apart: idle
        a = simulate(trace, build_manager("tlm", geometry), throttle_cap_ps=us(1))
        b = simulate(trace, build_manager("tlm", geometry), throttle_cap_ps=0)
        assert a.ammat_ns == pytest.approx(b.ammat_ns, rel=1e-6)


class TestBoundaryHandling:
    def test_long_gap_crosses_many_boundaries_once_each(self, geometry):
        manager = build_manager("mempod", geometry, interval_ps=us(10))
        records = [
            (0, 64, 0, 0),
            (us(500), 128, 0, 0),  # 50 intervals later
        ]
        simulate(Trace(name="gap", records=records), manager)
        # Exactly the elapsed boundaries fired, no more.
        assert all(pod.intervals == 50 for pod in manager.pods)

    def test_empty_trace(self, geometry):
        manager = build_manager("mempod", geometry)
        result = simulate(Trace(name="empty", records=[]), manager)
        assert result.demand_requests == 0
        assert result.ammat_ns == 0.0

    def test_single_request(self, geometry):
        manager = build_manager("mempod", geometry)
        result = simulate(burst_trace(1, gap_ps=1), manager)
        assert result.demand_requests == 1
        assert result.ammat_ns > 0
