"""Manager-level behaviour: MemPod, HMA, THM, CAMEO, baselines."""

import pytest

from repro.common.units import us
from repro.core.mempod import MemPodManager
from repro.geometry import scaled_geometry
from repro.managers import (
    CameoManager,
    HmaManager,
    NoMigrationManager,
    SingleLevelManager,
    ThmManager,
)
from repro.system.hybrid import HybridMemory, SingleLevelMemory


@pytest.fixture
def geometry():
    return scaled_geometry(64)


def hybrid(geometry):
    return HybridMemory(geometry)


def hammer(manager, page, times, start_ps=0, gap_ps=9_000, geometry=None):
    """Issue ``times`` demand reads to one page; returns last arrival."""
    page_bytes = manager.geometry.page_bytes
    at = start_ps
    for i in range(times):
        manager.handle(page * page_bytes + (i % 32) * 64, False, at, 0)
        at += gap_ps
    return at


class TestNoMigration:
    def test_requests_pass_through(self, geometry):
        manager = NoMigrationManager(hybrid(geometry), geometry)
        hammer(manager, 5, 10)
        manager.finish(100_000)
        assert manager.memory.merged_stats().served == 10
        assert manager.migration_stats.page_swaps == 0


class TestSingleLevel:
    def test_covers_whole_flat_space(self, geometry):
        memory = SingleLevelMemory(geometry)
        manager = SingleLevelManager(memory, geometry)
        last_page = geometry.total_pages - 1
        manager.handle(last_page * geometry.page_bytes, False, 0, 0)
        manager.finish(0)
        assert manager.memory.merged_stats().served == 1


class TestMemPod:
    def test_hot_page_migrates_to_fast(self, geometry):
        manager = MemPodManager(hybrid(geometry), geometry, interval_ps=us(50))
        hot = geometry.pod_slow_slot_to_page(0, 0)
        # Hammer across two intervals so the boundary fires and the
        # scheduled copy is issued by later traffic.
        hammer(manager, hot, 30, gap_ps=us(5))
        manager.finish(us(200))
        pod = manager.pods[0]
        frame = pod.translate(hot)
        assert frame < geometry.fast_pages
        assert manager.total_migrations >= 1

    def test_requests_follow_remap(self, geometry):
        manager = MemPodManager(hybrid(geometry), geometry, interval_ps=us(50))
        hot = geometry.pod_slow_slot_to_page(0, 0)
        hammer(manager, hot, 60, gap_ps=us(3))
        manager.finish(us(400))
        # Fast device must have served demand (the migrated page's hits).
        fast_stats = manager.memory.fast.merged_stats()
        assert fast_stats.count_by_kind[0] > 0  # DEMAND kind

    def test_migration_traffic_is_pod_local(self, geometry):
        manager = MemPodManager(hybrid(geometry), geometry, interval_ps=us(50))
        hot = geometry.pod_slow_slot_to_page(2, 0)  # pod 2's page
        hammer(manager, hot, 60, gap_ps=us(3))
        manager.finish(us(400))
        stats = manager.migration_stats
        assert stats.page_swaps >= 1
        assert set(stats.swaps_by_pod) == {2}

    def test_interval_boundaries_advance(self, geometry):
        manager = MemPodManager(hybrid(geometry), geometry, interval_ps=us(10))
        hammer(manager, geometry.fast_pages + 1, 5, gap_ps=us(25))
        # 5 requests spanning 125 us of trace -> 12 boundaries crossed.
        assert all(pod.intervals >= 10 for pod in manager.pods)

    def test_remap_cache_counts_misses(self, geometry):
        manager = MemPodManager(
            hybrid(geometry), geometry, interval_ps=us(50), cache_bytes=4096
        )
        hammer(manager, geometry.fast_pages + 8, 20)
        assert manager.cache_miss_rate() > 0.0

    def test_storage_report_scales_with_pods(self, geometry):
        manager = MemPodManager(hybrid(geometry), geometry)
        report = manager.storage_report()
        entry_bits = (geometry.pages_per_pod - 1).bit_length()
        assert report["remap_bits"] == geometry.pods * geometry.pages_per_pod * entry_bits


class TestHma:
    def test_migrates_hot_pages_at_epoch(self, geometry):
        manager = HmaManager(
            hybrid(geometry), geometry,
            interval_ps=us(100), sort_penalty_ps=0, hot_threshold=4,
        )
        hot = geometry.fast_pages + 17
        hammer(manager, hot, 40, gap_ps=us(5))
        manager.finish(us(400))
        assert manager.total_migrations >= 1
        assert manager._location.get(hot, hot) < geometry.fast_pages

    def test_below_threshold_pages_stay(self, geometry):
        manager = HmaManager(
            hybrid(geometry), geometry,
            interval_ps=us(100), sort_penalty_ps=0, hot_threshold=50,
        )
        hammer(manager, geometry.fast_pages + 17, 40, gap_ps=us(5))
        manager.finish(us(400))
        assert manager.total_migrations == 0

    def test_stall_mode_blocks_memory(self, geometry):
        stalled = HmaManager(
            hybrid(geometry), geometry,
            interval_ps=us(50), sort_penalty_ps=us(30), penalty_mode="stall",
        )
        free = HmaManager(
            hybrid(geometry), geometry,
            interval_ps=us(50), sort_penalty_ps=us(30), penalty_mode="compute",
        )
        page = geometry.fast_pages + 3
        for manager in (stalled, free):
            hammer(manager, page, 30, gap_ps=us(4))
            manager.finish(us(200))
        lat_stalled = stalled.memory.merged_stats().total_latency_ps
        lat_free = free.memory.merged_stats().total_latency_ps
        assert lat_stalled > lat_free

    def test_migration_cap_respected(self, geometry):
        manager = HmaManager(
            hybrid(geometry), geometry,
            interval_ps=us(100), sort_penalty_ps=0,
            hot_threshold=2, max_migrations_per_interval=3,
        )
        for slot in range(20):
            hammer(manager, geometry.fast_pages + slot * 4, 6, gap_ps=us(1))
        manager.handle(0, False, us(150), 0)  # cross the boundary
        assert manager.total_migrations <= 3


class TestThm:
    def test_threshold_triggers_segment_swap(self, geometry):
        manager = ThmManager(hybrid(geometry), geometry, threshold=4)
        hot = geometry.fast_pages + 9
        hammer(manager, hot, 10)
        manager.finish(us(100))
        # The 4th access crosses the threshold and swaps the page in;
        # subsequent accesses hit it as the resident (defending it).
        assert manager.total_migrations == 1
        assert manager._location.get(hot, hot) < geometry.fast_pages

    def test_resident_hits_defend(self, geometry):
        manager = ThmManager(hybrid(geometry), geometry, threshold=4)
        segment_fast = 9  # fast page 9 is its own segment's resident
        challenger = geometry.fast_pages + 9
        # Alternate: challenger can never accumulate 4 net increments.
        for i in range(20):
            hammer(manager, challenger, 1, start_ps=i * 20_000)
            hammer(manager, segment_fast, 1, start_ps=i * 20_000 + 10_000)
        assert manager.total_migrations == 0

    def test_migration_restricted_to_segment(self, geometry):
        manager = ThmManager(hybrid(geometry), geometry, threshold=2)
        hot = geometry.fast_pages + 9
        hammer(manager, hot, 4)
        manager.finish(us(100))
        # The page must sit in its segment's one fast frame.
        assert manager._location[hot] == manager.segment_of(hot)


class TestCameo:
    def test_every_slow_access_migrates(self, geometry):
        manager = CameoManager(hybrid(geometry), geometry)
        line_addr = (geometry.fast_pages + 5) * geometry.page_bytes
        manager.handle(line_addr, False, 0, 0)
        assert manager.total_migrations == 1
        # Second touch hits the fast slot: no further migration.
        manager.handle(line_addr, False, 100_000, 0)
        assert manager.total_migrations == 1

    def test_group_thrash(self, geometry):
        # Two slow lines of the same congruence group evict each other.
        manager = CameoManager(hybrid(geometry), geometry)
        fast_lines = manager.fast_lines
        line_a = (fast_lines + 7) * 64
        line_b = (2 * fast_lines + 7) * 64
        for i in range(4):
            manager.handle(line_a, False, i * 200_000, 0)
            manager.handle(line_b, False, i * 200_000 + 100_000, 0)
        assert manager.total_migrations == 8

    def test_wasted_migration_detected(self, geometry):
        manager = CameoManager(hybrid(geometry), geometry)
        fast_lines = manager.fast_lines
        manager.handle((fast_lines + 7) * 64, False, 0, 0)  # migrate in
        manager.handle((2 * fast_lines + 7) * 64, False, 100_000, 0)  # evict it untouched
        assert manager.wasted_migrations == 1

    def test_line_swap_moves_128_bytes(self, geometry):
        manager = CameoManager(hybrid(geometry), geometry)
        manager.handle((manager.fast_lines + 1) * 64, False, 0, 0)
        assert manager.migration_stats.bytes_moved == 128
