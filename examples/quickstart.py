#!/usr/bin/env python3
"""Quickstart: compare MemPod against the no-migration baseline.

Builds a Python-scale version of the paper's machine (1/32 capacity,
same shape: 8 HBM channels + 4 DDR4 channels, 2 KB pages, 4 pods),
generates the ``xalanc`` 8-core workload, and replays it through three
configurations:

* ``tlm``      — the flat two-level memory with no migration,
* ``mempod``   — the paper's clustered MEA-driven migration manager,
* ``hbm-only`` — the all-fast upper bound.

Run:  python examples/quickstart.py
"""

from repro import build_trace, get_workload, run, scaled_geometry


def main() -> None:
    geometry = scaled_geometry(32)
    print(
        f"machine: {geometry.fast_bytes >> 20} MB fast + "
        f"{geometry.slow_bytes >> 20} MB slow, {geometry.pods} pods"
    )

    build = build_trace(get_workload("xalanc"), geometry, length=150_000, seed=1)
    trace = build.trace
    print(
        f"trace:   {len(trace):,} requests over {trace.duration_ps / 1e6:.0f} us, "
        f"{build.fast_resident_fraction:.0%} of pages start in fast memory"
    )

    baseline = run(trace, "tlm", geometry)
    mempod = run(trace, "mempod", geometry)
    upper = run(trace, "hbm-only", geometry)

    print()
    print(f"{'configuration':<12} {'AMMAT':>10} {'vs TLM':>8} {'fast hits':>10} {'migrations':>11}")
    for result in (baseline, mempod, upper):
        print(
            f"{result.manager:<12} {result.ammat_ns:>8.1f}ns "
            f"{result.normalized_to(baseline):>8.2f} "
            f"{result.fast_service_fraction:>9.0%} "
            f"{result.migrations:>11,}"
        )

    saved = 1.0 - mempod.normalized_to(baseline)
    print()
    print(f"MemPod changes AMMAT by {-saved:+.1%} relative to the no-migration baseline")
    print(f"(the HBM-only bound is {1.0 - upper.normalized_to(baseline):.1%} better).")


if __name__ == "__main__":
    main()
