"""Declarative mechanism specs and the registry the simulator builds from.

``MechanismSpec`` states a mechanism as the paper's five Section-4
building blocks; :func:`register_mechanism` makes it buildable by name
through :func:`build_manager`, the sweep runner, and the CLI.  The
seven canonical paper mechanisms (``MANAGER_KINDS``) and two novel
hybrids (:mod:`repro.mechanisms.hybrids`) are registered on import.
"""

from .registry import (
    MANAGER_KINDS,
    build_manager,
    get_mechanism,
    mechanism_names,
    register_mechanism,
    unregister_mechanism,
)
from .spec import (
    FLEXIBILITIES,
    MEMORY_KINDS,
    REMAP_POLICIES,
    TRIGGERS,
    DatapathSpec,
    MechanismSpec,
    manager_shape,
)

__all__ = [
    "MANAGER_KINDS",
    "build_manager",
    "get_mechanism",
    "mechanism_names",
    "register_mechanism",
    "unregister_mechanism",
    "FLEXIBILITIES",
    "MEMORY_KINDS",
    "REMAP_POLICIES",
    "TRIGGERS",
    "DatapathSpec",
    "MechanismSpec",
    "manager_shape",
]
