"""Ablations of the design choices DESIGN.md calls out.

Not paper figures, but quantified versions of the paper's design
arguments:

* **Pod count** (paper Section 5.1): one pod is a centralised
  controller, more pods trade migration flexibility for parallelism
  and locality.  The paper's design point is pods = slow-MC count (4).
* **MEA nomination threshold** (``mea_min_count``): our implementation
  choice to withhold count-1 MEA entries from migration; the ablation
  shows the traffic it saves and the AMMAT it buys.
* **HMA penalty mode**: the paper's 7 ms sort penalty as pure compute
  (default) vs as a full memory stall (pessimistic bound).
"""

import pytest
from conftest import emit

from repro.common.units import us
from repro.experiments import ExperimentConfig, format_rows, trace_for
from repro.geometry import scaled_geometry
from repro.system.simulator import run

ABLATION_WORKLOADS = ("xalanc", "omnetpp", "cactus", "mix8")


@pytest.fixture(scope="module")
def ablation_config(config):
    workloads = config.workloads or ABLATION_WORKLOADS
    return ExperimentConfig(
        scale=config.scale, length=config.length, seed=config.seed, workloads=workloads
    )


def _normalized(config, geometry, mechanism, **params):
    values = []
    migrations = 0
    for name in config.workload_list():
        trace = trace_for(config, name)
        base = run(trace, "tlm", geometry)
        sim = run(trace, mechanism, geometry, **params)
        values.append(sim.normalized_to(base))
        migrations += sim.migrations
    return sum(values) / len(values), migrations


def test_ablation_pod_count(benchmark, ablation_config, results_dir):
    """AMMAT vs pod count at fixed capacity (1 = centralised)."""

    def sweep():
        rows = []
        for pods in (1, 2, 4):
            geometry = scaled_geometry(ablation_config.scale, pods=pods)
            avg, migrations = _normalized(ablation_config, geometry, "mempod")
            rows.append([f"{pods} pod(s)", avg, migrations])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_pod_count",
        format_rows(
            ["configuration", "AMMAT vs TLM", "migrations"],
            rows,
            title="Ablation - pod count (paper Section 5.1; design point: 4)",
        ),
    )
    by_pods = {row[0]: row[1] for row in rows}
    # Every pod count must still beat the no-migration baseline on the
    # hot-set ablation workloads; the exact ordering is workload-
    # dependent (centralised trades locality for flexibility).
    assert all(v < 1.0 for v in by_pods.values())


def test_ablation_mea_min_count(benchmark, ablation_config, results_dir):
    """Nominating count-1 MEA entries vs withholding them."""
    geometry = ablation_config.geometry

    def sweep():
        rows = []
        for min_count, label in ((1, "migrate all entries"), (2, "require count >= 2")):
            avg, migrations = _normalized(
                ablation_config, geometry, "mempod", mea_min_count=min_count
            )
            rows.append([label, avg, migrations])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_mea_min_count",
        format_rows(
            ["policy", "AMMAT vs TLM", "migrations"],
            rows,
            title="Ablation - MEA nomination threshold",
        ),
    )
    migrate_all, thresholded = rows[0], rows[1]
    # The threshold trades migrations for AMMAT: strictly less traffic.
    assert thresholded[2] < migrate_all[2]


def test_ablation_hma_penalty_mode(benchmark, ablation_config, results_dir):
    """HMA's sort penalty as compute time vs as a full memory stall."""
    geometry = ablation_config.geometry
    base_params = ablation_config.hma_params()

    def sweep():
        rows = []
        for mode in ("compute", "stall"):
            avg, _ = _normalized(
                ablation_config, geometry, "hma", penalty_mode=mode, **base_params
            )
            rows.append([mode, avg])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_hma_penalty",
        format_rows(
            ["penalty mode", "AMMAT vs TLM"],
            rows,
            title="Ablation - HMA sort-penalty accounting",
        ),
    )
    by_mode = {row[0]: row[1] for row in rows}
    assert by_mode["stall"] >= by_mode["compute"]


def test_ablation_interval_length(benchmark, ablation_config, results_dir):
    """MemPod adaptivity: 50 us intervals vs a 10x coarser manager."""
    geometry = ablation_config.geometry

    def sweep():
        rows = []
        for interval_us, label in ((50, "50 us (paper)"), (500, "500 us")):
            avg, migrations = _normalized(
                ablation_config, geometry, "mempod", interval_ps=us(interval_us)
            )
            rows.append([label, avg, migrations])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_interval",
        format_rows(
            ["interval", "AMMAT vs TLM", "migrations"],
            rows,
            title="Ablation - migration interval length",
        ),
    )
    assert rows[0][1] <= rows[1][1] + 0.05  # fine intervals adapt at least as well
