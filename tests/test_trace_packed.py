"""PackedTrace, the Trace.packed() cache, sliced(), and page math."""

import pytest

import repro.trace.packed
from repro.common.errors import TraceError
from repro.common.rng import DeterministicRng
from repro.trace.packed import PackedTrace
from repro.trace.record import Trace


RECORDS = [
    (0, 0, 0, 0),
    (10, 2048, 1, 1),
    (25, 4096 + 64, 0, 2),
    (25, 123_456, 1, 3),
    (90, 7 * 2048 + 100, 0, 0),
]


class TestPackedTrace:
    def test_columns_mirror_records(self):
        packed = PackedTrace(RECORDS)
        assert packed.length == len(RECORDS)
        assert packed.arrivals == [r[0] for r in RECORDS]
        assert packed.addresses == [r[1] for r in RECORDS]
        assert packed.is_writes == [r[2] for r in RECORDS]
        assert packed.cores == [r[3] for r in RECORDS]
        assert packed.max_address == max(r[1] for r in RECORDS)

    def test_empty(self):
        packed = PackedTrace([])
        assert packed.length == 0
        assert packed.arrivals == []
        assert packed.max_address == -1
        assert packed.pages(11) == []

    def test_pages_match_division(self):
        packed = PackedTrace(RECORDS)
        assert packed.pages(11) == [r[1] // 2048 for r in RECORDS]
        assert packed.pages(6) == [r[1] // 64 for r in RECORDS]

    def test_pages_cached_per_shift(self):
        packed = PackedTrace(RECORDS)
        assert packed.pages(11) is packed.pages(11)
        assert packed.pages(11) is not packed.pages(6)

    def test_planes_dict_is_writable_cache(self):
        packed = PackedTrace(RECORDS)
        packed.planes[("k",)] = ([1], [2], [3])
        assert packed.planes[("k",)] == ([1], [2], [3])


def _grouping_fixture(seed=4, count=1_000):
    """Records plus a synthetic decode plane spread over 6 controllers."""
    rng = DeterministicRng(seed)
    records = []
    at = 0
    for _ in range(count):
        at += rng.randrange(5_000)
        records.append((at, rng.randrange(1 << 22) & ~63, int(rng.random() < 0.3), 0))
    packed = PackedTrace(records)
    ctrls = [rng.randrange(6) for _ in range(count)]
    banks = [rng.randrange(16) for _ in range(count)]
    rows = [rng.randrange(64) for _ in range(count)]
    return packed, ctrls, banks, rows


class TestChunkGroups:
    def _reference_groups(self, packed, ctrls, banks, rows, sample):
        """Obviously-correct regrouping: per chunk, stable-partition the
        record indices by controller."""
        total = packed.length
        step = sample if sample else (total or 1)
        chunks = []
        for begin in range(0, total, step):
            end = min(begin + step, total)
            by_ctrl = {}
            for i in range(begin, end):
                by_ctrl.setdefault(ctrls[i], []).append(i)
            groups = tuple(
                (
                    ci,
                    [banks[i] for i in members],
                    [rows[i] for i in members],
                    [packed.is_writes[i] for i in members],
                    [packed.arrivals[i] for i in members],
                )
                for ci, members in sorted(by_ctrl.items())
            )
            chunks.append((end - begin, groups))
        return chunks

    @pytest.mark.parametrize("sample", [0, 128, 100, 1_000, 5_000])
    def test_matches_reference_partition(self, sample):
        packed, ctrls, banks, rows = _grouping_fixture()
        chunks = packed.chunk_groups(("k",), ctrls, banks, rows, sample)
        assert chunks == self._reference_groups(packed, ctrls, banks, rows, sample)

    @pytest.mark.parametrize("sample", [0, 128])
    def test_pure_python_twin_is_identical(self, sample, monkeypatch):
        packed, ctrls, banks, rows = _grouping_fixture()
        with_numpy = packed.chunk_groups(("k",), ctrls, banks, rows, sample)
        monkeypatch.setattr(repro.trace.packed, "_np", None)
        twin = PackedTrace(
            list(zip(packed.arrivals, packed.addresses, packed.is_writes, packed.cores))
        )
        assert twin.chunk_groups(("k",), ctrls, banks, rows, sample) == with_numpy

    def test_memoised_per_sample_and_layout(self):
        packed, ctrls, banks, rows = _grouping_fixture(count=300)
        first = packed.chunk_groups(("a",), ctrls, banks, rows, 128)
        assert packed.chunk_groups(("a",), ctrls, banks, rows, 128) is first
        assert packed.chunk_groups(("b",), ctrls, banks, rows, 128) is not first
        assert packed.chunk_groups(("a",), ctrls, banks, rows, 0) is not first

    def test_empty_trace(self):
        packed = PackedTrace([])
        assert packed.chunk_groups(("k",), [], [], [], 128) == []

    def test_preserves_intra_controller_order(self):
        packed, ctrls, banks, rows = _grouping_fixture(seed=6, count=700)
        for count, groups in packed.chunk_groups(("k",), ctrls, banks, rows, 128):
            assert count == sum(len(g[4]) for g in groups)
            group_ids = [g[0] for g in groups]
            assert group_ids == sorted(group_ids)
            for _, _, _, _, arrival_col in groups:
                assert arrival_col == sorted(arrival_col)


class TestTracePackedAccessor:
    def test_packed_is_cached(self):
        trace = Trace(name="t", records=list(RECORDS))
        assert trace.packed() is trace.packed()

    def test_packed_rebuilds_after_resize(self):
        trace = Trace(name="t", records=list(RECORDS))
        first = trace.packed()
        trace.records.append((120, 2048, 0, 0))
        second = trace.packed()
        assert second is not first
        assert second.length == len(RECORDS) + 1


class TestSliced:
    def test_sliced_preserves_contents(self):
        trace = Trace(name="t", records=list(RECORDS), page_bytes=1024)
        part = trace.sliced(1, 4)
        assert part.records == RECORDS[1:4]
        assert part.name == "t"
        assert part.page_bytes == 1024

    def test_sliced_skips_revalidation(self, monkeypatch):
        """Regression: sliced() used to re-run validate() per slice, an
        O(n) pass on the sweep-construction path."""
        trace = Trace(name="t", records=list(RECORDS))
        calls = []
        monkeypatch.setattr(
            Trace, "validate", lambda self: calls.append(1), raising=True
        )
        trace.sliced(0, 3)
        assert calls == []

    def test_construction_still_validates(self):
        with pytest.raises(TraceError):
            Trace(name="bad", records=[(10, 0, 0, 0), (5, 0, 0, 0)])


class TestPageMath:
    def test_shift_matches_division_for_power_of_two(self):
        trace = Trace(name="t", records=list(RECORDS), page_bytes=2048)
        assert trace.page_sequence() == [r[1] // 2048 for r in RECORDS]
        assert trace.pages_touched() == {r[1] // 2048 for r in RECORDS}

    def test_non_power_of_two_page_bytes_falls_back(self):
        trace = Trace(name="t", records=list(RECORDS), page_bytes=3000)
        assert trace.page_sequence() == [r[1] // 3000 for r in RECORDS]
        assert trace.pages_touched() == {r[1] // 3000 for r in RECORDS}
