"""Figure 2 — MEA vs FC next-interval prediction accuracy.

Paper shape: despite *worse counting*, MEA predicts the next interval's
hot pages *better* than Full Counters on average (the paper reports
+16 % / +81 % / +68 % across the three tiers; our synthetic traces
reproduce the sign on every tier with smaller magnitudes — see
EXPERIMENTS.md).
"""

from conftest import emit


def test_fig2_prediction_accuracy(benchmark, config, oracle_figures, results_dir):
    figures = benchmark.pedantic(lambda: oracle_figures, rounds=1, iterations=1)
    emit(results_dir, "fig2_prediction_accuracy", figures.format_fig2())

    avg = figures.avg_all
    # The headline result: MEA out-predicts FC on the top tier...
    assert avg.mea_future_hits[0] > avg.fc_future_hits[0]
    # ...and overall across the three tiers combined.
    assert sum(avg.mea_future_hits) > sum(avg.fc_future_hits)
