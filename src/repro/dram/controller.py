"""Per-channel memory controller with bounded FR-FCFS scheduling.

The controller is event-driven: the simulator presents transactions in
global arrival order, the controller buffers up to ``window`` of them,
and whenever the buffer overflows (or :meth:`flush` is called) it
services one transaction, preferring **row hits** among the buffered
candidates and falling back to the **oldest** — a bounded-window
approximation of FR-FCFS that preserves the row-locality effects the
paper's results depend on while keeping per-request cost ``O(window)``.

Timing accounted per transaction:

* bank availability plus the row-buffer outcome latency (see
  :mod:`repro.dram.bank`),
* channel data-bus occupancy (one burst per transaction, serialised),
* an optional external *block* time (used to model HMA's OS/sort stalls
  and in-flight migration page locks).

Completion times are returned to the caller and aggregated into
:class:`ControllerStats`.

Every structure here is replayed millions of times per experiment, so
the pending buffer holds plain tuples
``(arrival_ps, account_ps, bank, row, is_write, kind)`` rather than
objects, and the scheduling loops keep their state in locals.

Two service datapaths share the same semantics:

* :meth:`ChannelController.enqueue` — the reference path, one
  transaction per call;
* :meth:`ChannelController.enqueue_batch` — the columnar path the
  replay kernels use: whole per-controller columns handed down at once,
  serviced with controller, bank, and stats state hoisted into locals,
  an idle-channel drain fast path for the uncontended common case, and
  run-length row-hit streaming.  It must stay bit-for-bit equal to
  calling ``enqueue`` per element — ``tests/test_dram_controller_batch.py``
  and the kernel differential suite enforce it, and the scheduling
  functions it inlines (``enqueue``, ``_choose``, ``_service_at``,
  ``Bank.access``) are fingerprinted in the kernel manifest so edits
  there fail ``repro lint`` until re-proven.

Controllers also report *dirty-channel* hints: every entry point that
may advance the data bus adds the controller's key to a sink set shared
with the owning memory, so the CPU throttle's peak-bus probe scans only
channels touched since its last sample (see
``HybridMemory.peak_bus_free_ps``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..common.config import require_positive_int
from .bank import Bank, ROW_HIT
from .request import BOOKKEEPING, DEMAND, MIGRATION
from .timing import DramTiming

REQUEST_BYTES = 64

#: Pending-buffer entry layout (plain tuple, index-addressed):
#: ``(arrival_ps, account_ps, bank, row, is_write, kind)``.
PendingEntry = Tuple[int, int, int, int, int, int]


@dataclass
class ControllerStats:
    """Aggregate service statistics for one channel controller.

    The request kinds form a closed set of three, so the per-kind
    tallies are plain integer fields (the service loop touches them for
    every transaction); the dict-shaped views existing callers expect
    are derived on demand.
    """

    served: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    total_latency_ps: int = 0
    demand_latency_ps: int = 0
    migration_latency_ps: int = 0
    bookkeeping_latency_ps: int = 0
    demand_count: int = 0
    migration_count: int = 0
    bookkeeping_count: int = 0

    @property
    def latency_by_kind(self) -> dict:
        """``{kind: total latency}`` view over the closed kind set."""
        return {
            DEMAND: self.demand_latency_ps,
            MIGRATION: self.migration_latency_ps,
            BOOKKEEPING: self.bookkeeping_latency_ps,
        }

    @property
    def count_by_kind(self) -> dict:
        """``{kind: served count}`` view over the closed kind set."""
        return {
            DEMAND: self.demand_count,
            MIGRATION: self.migration_count,
            BOOKKEEPING: self.bookkeeping_count,
        }

    def merge(self, other: "ControllerStats") -> None:
        """Accumulate ``other`` into this stats object (field-wise sum)."""
        self.served += other.served
        self.reads += other.reads
        self.writes += other.writes
        self.row_hits += other.row_hits
        self.total_latency_ps += other.total_latency_ps
        self.demand_latency_ps += other.demand_latency_ps
        self.migration_latency_ps += other.migration_latency_ps
        self.bookkeeping_latency_ps += other.bookkeeping_latency_ps
        self.demand_count += other.demand_count
        self.migration_count += other.migration_count
        self.bookkeeping_count += other.bookkeeping_count

    @property
    def row_hit_rate(self) -> float:
        """Fraction of served transactions that hit an open row."""
        return self.row_hits / self.served if self.served else 0.0


@dataclass
class ServicePathStats:
    """Which batched-datapath regime serviced each transaction.

    Observability sidecar for the contention-aware service engine in
    :meth:`ChannelController.enqueue_batch` / ``enqueue_run``: the
    counters are bumped only by the batched entry points (the reference
    ``enqueue`` path never touches them), so they measure how contended
    a replay was without perturbing :class:`ControllerStats` or the
    differential state snapshots.  They never feed a simulation result.

    * ``closed_form_served`` — serviced by a closed-form backlog
      episode (arithmetic-series timing, no per-element scheduling);
    * ``indexed_served`` — serviced per element by the indexed pending
      scheduler inside a contended stretch;
    * ``scalar_fallback_served`` — serviced by the scalar ``_choose``
      clone (FCFS controllers, ``window == 1``).

    Idle-channel fast-path services are the remainder: a controller's
    ``stats.served`` minus these three minus any reference-path
    services.
    """

    closed_form_served: int = 0
    indexed_served: int = 0
    scalar_fallback_served: int = 0

    def merge(self, other: "ServicePathStats") -> None:
        """Accumulate ``other`` into this sidecar (field-wise sum)."""
        self.closed_form_served += other.closed_form_served
        self.indexed_served += other.indexed_served
        self.scalar_fallback_served += other.scalar_fallback_served

    @property
    def batched_served(self) -> int:
        """Transactions serviced by any counted batched regime."""
        return (
            self.closed_form_served
            + self.indexed_served
            + self.scalar_fallback_served
        )


class ChannelController:
    """One channel's scheduler, banks, and data bus.

    Parameters
    ----------
    timing:
        The DRAM technology parameters for this channel.
    banks:
        Flat bank count (ranks x banks per channel).
    window:
        FR-FCFS reorder window.  ``1`` degenerates to FCFS; larger
        windows trade scheduling fidelity for a little CPU time.
    """

    def __init__(self, timing: DramTiming, banks: int, window: int = 8) -> None:
        require_positive_int("banks", banks)
        require_positive_int("window", window)
        self.timing = timing
        self.window = window
        self.banks: List[Bank] = [Bank() for _ in range(banks)]
        self.bus_free_ps = 0
        self.stats = ControllerStats()
        self.service_paths = ServicePathStats()
        self._pending: List[PendingEntry] = []
        self._burst_ps = timing.burst_ps(REQUEST_BYTES)
        self._turnaround_ps = timing.turnaround_ps
        self._last_was_write = False
        self._trefi_ps = timing.trefi_ps
        self._trfc_ps = timing.trfc_ps
        self._next_refresh_ps = self._trefi_ps if self._trefi_ps else 0
        self.refreshes = 0
        self.last_completion_ps = 0
        # Dirty-channel hint for the owning memory's peak-bus cache:
        # every entry point that may advance the bus adds this
        # controller's key to the sink.  ``_dirty`` short-circuits the
        # common already-marked case to one attribute test; the owning
        # memory rewires the sink to one set shared by all its
        # controllers and clears the flag when it drains the set.  A
        # standalone controller keeps a private sink so the hot paths
        # stay branch-free.
        self._dirty = False
        self._dirty_sink: set = set()
        self._dirty_key = 0

    # -- public API -----------------------------------------------------

    def enqueue(
        self,
        bank: int,
        row: int,
        is_write: bool,
        arrival_ps: int,
        kind: int = DEMAND,
        account_ps: Optional[int] = None,
    ) -> None:
        """Buffer one transaction; may trigger a service step.

        ``account_ps`` is the timestamp latency is measured against —
        usually the arrival, but a request that was blocked behind a
        migrating page accounts from its original arrival so the block
        time shows up as stall time.
        """
        if not self._dirty:
            self._dirty = True
            self._dirty_sink.add(self._dirty_key)
        pending = self._pending
        pending.append((
            arrival_ps,
            arrival_ps if account_ps is None else account_ps,
            bank,
            row,
            is_write,
            kind,
        ))
        if len(pending) == 1:
            # A lone transaction can never start before its own arrival,
            # so the drain loop below would break without side effects.
            return
        # Keep the buffer bounded, then drain every transaction whose
        # service would have *started* before this arrival: an idle
        # channel services immediately; the window only buys reordering
        # while the channel is genuinely contended.
        banks = self.banks
        choose = self._choose
        service_at = self._service_at
        while len(pending) > self.window:
            service_at(choose())
        while pending:
            idx = choose()
            cand = pending[idx]
            start = banks[cand[2]].busy_until_ps
            if cand[0] > start:
                start = cand[0]
            if start >= arrival_ps:
                # The preferred candidate cannot start yet; an older
                # transaction to a free bank still can (hardware would
                # have issued it already), so drain that one instead.
                if idx != 0:
                    head = pending[0]
                    head_start = banks[head[2]].busy_until_ps
                    if head[0] > head_start:
                        head_start = head[0]
                    if head_start < arrival_ps:
                        service_at(0)
                        continue
                break
            service_at(idx)

    def enqueue_batch(
        self,
        banks,
        rows,
        is_writes,
        arrivals,
        accounts=None,
        kind: int = DEMAND,
        kinds=None,
    ) -> None:
        """Columnar :meth:`enqueue`: service whole per-controller columns.

        Bit-for-bit equal to calling ``enqueue(banks[i], rows[i],
        is_writes[i], arrivals[i], kinds[i], accounts[i])`` for each
        ``i`` in order, but with every controller, bank, and stats field
        hoisted into locals for the whole batch.  ``accounts=None``
        accounts each element from its own arrival; ``kinds=None``
        applies the scalar ``kind`` to every element (the columnar
        replay kernels pass a per-element kind column when they merge
        migration runs into a buffered demand column).  The column is
        replayed in *reference enqueue order* — arrivals need not be
        monotone (migration write-backs carry future timestamps), the
        loop is an exact per-element clone either way.

        Three regimes alternate inside the loop:

        * **idle-channel drain fast path** — with at most one buffered
          transaction and each arrival past the previous transaction's
          service start, the scheduler provably services the older
          transaction immediately (the window never fills), so the loop
          keeps the single in-flight transaction in locals and never
          touches the pending buffer; consecutive same-bank same-row
          transactions stream as a run-length row-hit burst with the
          bank's fields cached in locals too.
        * **contended stretches** — the window-bounded FR-FCFS drain
          (``_choose`` + ``_service_at`` semantics) run through an
          *indexed* pending scheduler: the buffer is lifted into
          incrementally maintained indices so each service decision
          costs O(pending banks) instead of an O(window) scan plus a
          mid-list pop, and degenerate backlogs — every buffered entry
          a twin of the incoming element, row open, bus direction
          matching, no refresh due — collapse into **closed-form
          episodes** (the arithmetic-series recurrence ``enqueue_run``
          uses, generalised to mid-batch).  Any episode precondition
          failing falls back to the exact per-element drain.
        * **scalar FCFS fallback** — ``window == 1`` defeats both the
          fast path (an uncontended pair forced through ``_choose`` may
          reorder) and the episode preconditions, so FCFS controllers
          run an exact scalar clone of ``enqueue`` for every element.

        Which regime serviced how many transactions is tallied in the
        :class:`ServicePathStats` sidecar (``self.service_paths``) —
        observability only, never part of a simulation result.
        """
        total = len(arrivals)
        if not total:
            return
        if kinds is not None:
            # Replay maximal uniform-kind chunks through the scalar-kind
            # datapath below: kind only affects stat bucketing, never a
            # scheduling decision, and chunk-splitting invariance is
            # pinned by the differential suite
            # (test_batch_split_points_inside_episodes), so the split is
            # bit-identical — and the hot loops keep the kind in a local
            # constant instead of paying a column read per element.
            lo = 0
            while lo < total:
                k0 = kinds[lo]
                hi = lo + 1
                while hi < total and kinds[hi] == k0:
                    hi += 1
                self.enqueue_batch(
                    banks[lo:hi], rows[lo:hi], is_writes[lo:hi],
                    arrivals[lo:hi],
                    None if accounts is None else accounts[lo:hi],
                    k0,
                )
                lo = hi
            return
        if accounts is None:
            accounts = arrivals
        if not self._dirty:
            self._dirty = True
            self._dirty_sink.add(self._dirty_key)
        pending = self._pending
        bank_list = self.banks
        window = self.window
        timing = self.timing
        burst = self._burst_ps
        turnaround = self._turnaround_ps
        trefi = self._trefi_ps
        trfc = self._trfc_ps
        trcd = timing.trcd_ps
        tcas = timing.tcas_ps
        trp = timing.trp_ps
        tras = timing.tras_ps
        # State shared with the contended-path closures below (nonlocal
        # cells); everything else stays a plain local or a closure
        # default so the fast path pays no indirection for it.
        bus_free = self.bus_free_ps
        last_was_write = self._last_was_write
        next_refresh = self._next_refresh_ps
        refreshes = self.refreshes
        last_completion = self.last_completion_ps
        served = 0
        n_reads = 0
        n_writes = 0
        row_hits = 0
        total_lat = 0
        demand_lat = 0
        migration_lat = 0
        bookkeeping_lat = 0
        demand_n = 0
        migration_n = 0
        bookkeeping_n = 0

        def _service(
            entry,
            bank_list=bank_list,
            burst=burst,
            turnaround=turnaround,
            trefi=trefi,
            trfc=trfc,
            trcd=trcd,
            tcas=tcas,
            trp=trp,
            tras=tras,
            demand_kind=DEMAND,
            migration_kind=MIGRATION,
        ):
            """Inline of ``_service_at`` on an already-popped entry."""
            nonlocal bus_free, last_was_write, next_refresh, refreshes
            nonlocal last_completion, served, n_reads, n_writes, row_hits
            nonlocal total_lat, demand_lat, migration_lat, bookkeeping_lat
            nonlocal demand_n, migration_n, bookkeeping_n
            arrival_ps, account_ps, bank_idx, row, is_write, e_kind = entry
            if trefi and arrival_ps >= next_refresh:
                elapsed = (arrival_ps - next_refresh) // trefi
                boundary = next_refresh + elapsed * trefi
                refreshes += elapsed + 1
                next_refresh = boundary + trefi
                stall_end = boundary + trfc
                if bus_free < stall_end:
                    bus_free = stall_end
                for b in bank_list:
                    if b.busy_until_ps < stall_end:
                        b.busy_until_ps = stall_end
            bank = bank_list[bank_idx]
            busy = bank.busy_until_ps
            start = arrival_ps if arrival_ps > busy else busy
            open_row = bank.open_row
            if open_row == row:
                bank.hits += 1
                row_hits += 1
                cas_issue = start
            elif open_row == -1:
                bank.misses += 1
                bank.activated_ps = start
                bank.open_row = row
                cas_issue = start + trcd
            else:
                bank.conflicts += 1
                earliest_pre = bank.activated_ps + tras
                pre_start = start if start > earliest_pre else earliest_pre
                act_start = pre_start + trp
                bank.activated_ps = act_start
                bank.open_row = row
                cas_issue = act_start + trcd
            data_ready = cas_issue + tcas
            bank.busy_until_ps = cas_issue + burst
            if is_write != last_was_write:
                bus_free += turnaround
                last_was_write = is_write
            completion = (data_ready if data_ready > bus_free else bus_free) + burst
            bus_free = completion
            if completion > last_completion:
                last_completion = completion
            served += 1
            if is_write:
                n_writes += 1
            else:
                n_reads += 1
            latency = completion - account_ps
            total_lat += latency
            if e_kind == demand_kind:
                demand_lat += latency
                demand_n += 1
            elif e_kind == migration_kind:
                migration_lat += latency
                migration_n += 1
            else:
                bookkeeping_lat += latency
                bookkeeping_n += 1

        def _choose_idx(
            pending=pending, bank_list=bank_list, starvation=self.STARVATION_PS
        ):
            """Inline of ``_choose`` against the hoisted bus direction."""
            if len(pending) == 1:
                return 0
            promote_past = pending[0][0] + starvation
            same_direction = -1
            direction = last_was_write
            for idx, cand in enumerate(pending):
                if bank_list[cand[2]].open_row == cand[3]:
                    if cand[0] > promote_past:
                        return 0
                    return idx
                if same_direction < 0 and cand[4] == direction:
                    same_direction = idx
            return same_direction if same_direction >= 0 else 0

        # Service paths below mutate only the hoisted cursors and
        # accumulators; the finally writes every one of them back so
        # the controller stays consistent on exceptional exits too.
        try:
            closed_served = 0
            indexed_served = 0
            scalar_served = 0
            i = 0
            if window == 1:
                # -- scalar FCFS fallback: exact clone of enqueue() ---------
                # window == 1 defeats the idle-drain fast path and every
                # episode precondition, so each element appends and drains
                # through the scalar _choose clone (counted as the scalar
                # fallback in the service-path sidecar).
                while i < total:
                    arrival = arrivals[i]
                    pending.append(
                        (arrival, accounts[i], banks[i], rows[i], is_writes[i],
                         kind)
                    )
                    i += 1
                    if len(pending) == 1:
                        continue
                    while len(pending) > window:
                        _service(pending.pop(_choose_idx()))
                    while pending:
                        idx = _choose_idx()
                        cand = pending[idx]
                        busy = bank_list[cand[2]].busy_until_ps
                        start = cand[0] if cand[0] > busy else busy
                        if start >= arrival:
                            if idx != 0:
                                head = pending[0]
                                head_start = bank_list[head[2]].busy_until_ps
                                if head[0] > head_start:
                                    head_start = head[0]
                                if head_start < arrival:
                                    _service(pending.pop(0))
                                    continue
                            break
                        _service(pending.pop(idx))
                # Every service above came from the scalar clone (the fast
                # path needs window >= 2), so the count is just the total.
                scalar_served = served
            while i < total:
                if len(pending) <= 1:
                    # -- idle-channel drain fast path -----------------------
                    # Holds the one in-flight transaction in locals; the
                    # pending buffer is only touched again on exit.
                    if pending:
                        p_arr, p_acc, p_bank, p_row, p_w, p_kind = pending.pop()
                    else:
                        p_arr = arrivals[i]
                        p_acc = accounts[i]
                        p_bank = banks[i]
                        p_row = rows[i]
                        p_w = is_writes[i]
                        p_kind = kind
                        i += 1
                    while i < total:
                        arrival = arrivals[i]
                        bank = bank_list[p_bank]
                        busy = bank.busy_until_ps
                        start = p_arr if p_arr > busy else busy
                        if start >= arrival:
                            break  # contended: buffer it, take the general path
                        # Service the held transaction (== _service_at on a
                        # lone pending entry).
                        if trefi and p_arr >= next_refresh:
                            elapsed = (p_arr - next_refresh) // trefi
                            boundary = next_refresh + elapsed * trefi
                            refreshes += elapsed + 1
                            next_refresh = boundary + trefi
                            stall_end = boundary + trfc
                            if bus_free < stall_end:
                                bus_free = stall_end
                            for b in bank_list:
                                if b.busy_until_ps < stall_end:
                                    b.busy_until_ps = stall_end
                            busy = bank.busy_until_ps
                            start = p_arr if p_arr > busy else busy
                        open_row = bank.open_row
                        if open_row == p_row:
                            bank.hits += 1
                            row_hits += 1
                            cas_issue = start
                        elif open_row == -1:
                            bank.misses += 1
                            bank.activated_ps = start
                            bank.open_row = p_row
                            cas_issue = start + trcd
                        else:
                            bank.conflicts += 1
                            earliest_pre = bank.activated_ps + tras
                            pre_start = start if start > earliest_pre else earliest_pre
                            act_start = pre_start + trp
                            bank.activated_ps = act_start
                            bank.open_row = p_row
                            cas_issue = act_start + trcd
                        data_ready = cas_issue + tcas
                        bank_busy = cas_issue + burst
                        bank.busy_until_ps = bank_busy
                        if p_w != last_was_write:
                            bus_free += turnaround
                            last_was_write = p_w
                        completion = (
                            data_ready if data_ready > bus_free else bus_free
                        ) + burst
                        bus_free = completion
                        if completion > last_completion:
                            last_completion = completion
                        served += 1
                        if p_w:
                            n_writes += 1
                        else:
                            n_reads += 1
                        latency = completion - p_acc
                        total_lat += latency
                        if p_kind == DEMAND:
                            demand_lat += latency
                            demand_n += 1
                        elif p_kind == MIGRATION:
                            migration_lat += latency
                            migration_n += 1
                        else:
                            bookkeeping_lat += latency
                            bookkeeping_n += 1
                        s_bank = p_bank
                        s_row = p_row
                        p_arr = arrival
                        p_acc = accounts[i]
                        p_bank = banks[i]
                        p_row = rows[i]
                        p_w = is_writes[i]
                        p_kind = kind
                        i += 1
                        if p_bank != s_bank or p_row != s_row:
                            continue
                        # Run-length row-hit streak: the serviced row is now
                        # open, so successive same-bank same-row transactions
                        # are guaranteed hits — stream them with the bank's
                        # fields held in locals (refresh or contention breaks
                        # the streak back to the full path above).
                        run_hits = 0
                        while i < total:
                            arrival = arrivals[i]
                            start = p_arr if p_arr > bank_busy else bank_busy
                            if start >= arrival:
                                break
                            if trefi and p_arr >= next_refresh:
                                break
                            run_hits += 1
                            bank_busy = start + burst
                            if p_w != last_was_write:
                                bus_free += turnaround
                                last_was_write = p_w
                            data_ready = start + tcas
                            completion = (
                                data_ready if data_ready > bus_free else bus_free
                            ) + burst
                            bus_free = completion
                            served += 1
                            if p_w:
                                n_writes += 1
                            else:
                                n_reads += 1
                            latency = completion - p_acc
                            total_lat += latency
                            if p_kind == DEMAND:
                                demand_lat += latency
                                demand_n += 1
                            elif p_kind == MIGRATION:
                                migration_lat += latency
                                migration_n += 1
                            else:
                                bookkeeping_lat += latency
                                bookkeeping_n += 1
                            p_arr = arrival
                            p_acc = accounts[i]
                            p_bank = banks[i]
                            p_row = rows[i]
                            p_w = is_writes[i]
                            p_kind = kind
                            i += 1
                            if p_bank != s_bank or p_row != s_row:
                                break
                        if run_hits:
                            bank.hits += run_hits
                            row_hits += run_hits
                            bank.busy_until_ps = bank_busy
                            if completion > last_completion:
                                last_completion = completion
                    pending.append((p_arr, p_acc, p_bank, p_row, p_w, p_kind))
                    if i >= total:
                        break
                    # The next element is contended against the held one:
                    # fall through into the contended engine.
                if window <= self.SCAN_WINDOW_MAX:
                    # -- contended stretch: scan engine ---------------------
                    # At the windows the paper's configurations use (<= 16)
                    # the reference pending list plus ``_choose_idx``'s
                    # direct scan beats any auxiliary structure — appends
                    # stay a plain list append and a mid-list pop of a
                    # handful of entries is a single small memmove.  What
                    # the batched engine adds on top of the scalar clone are
                    # the two closed-form episode shapes, both gated on the
                    # ``uni`` flag below so ordinary demand pays one local
                    # bool test per element.
                    #
                    # ``uni`` tracks "every buffered entry equals ``prev``"
                    # incrementally instead of rescanning the buffer per
                    # element: it is established once on stretch entry (the
                    # backlog an ``enqueue_run`` tail leaves is all twins),
                    # preserved by the episode paths (they only append
                    # twins), and killed by any ordinary append.  A buffer
                    # that *becomes* uniform some other way is merely missed
                    # — every episode falls back to the exact per-element
                    # drain, so the flag is a performance hint, never a
                    # correctness input.
                    prev = pending[-1]
                    uni = True
                    for v in pending:
                        if v != prev:
                            uni = False
                            break
                    s0 = served - closed_served
                    while i < total:
                        arrival = arrivals[i]
                        entry = (
                            arrival, accounts[i], banks[i], rows[i],
                            is_writes[i], kind,
                        )
                        # -- closed-form backlog episode --------------------
                        # enqueue_run's steady state, generalised to
                        # mid-batch.  With the buffer holding only twins of
                        # the incoming element, appends below the window are
                        # provably service-free — the chosen head is a twin
                        # whose start ``max(arrival, busy)`` can never
                        # precede its own arrival, so the gated drain breaks
                        # at once — and the window fill collapses into one
                        # bulk extend.  Once the window is full (and the
                        # twins' row open, the bus direction matching, no
                        # refresh due), every further append services
                        # exactly one twin head: a row hit at its own
                        # arrival, age promotion dormant under equal
                        # arrivals, the serviced head replaced by the
                        # identical incoming element.  A run of incoming
                        # twins therefore collapses into the same
                        # arithmetic-series recurrence enqueue_run uses.
                        # Any precondition failing falls through to the
                        # exact per-element drain below.
                        gate = uni and entry == prev
                        if gate:
                            e_arr, e_acc, e_bank, e_row, e_w, e_kind = entry
                            j = i + 1
                            while (
                                j < total
                                and arrivals[j] == e_arr
                                and banks[j] == e_bank
                                and rows[j] == e_row
                                and is_writes[j] == e_w
                                and accounts[j] == e_acc
                            ):
                                j += 1
                            run = j - i
                            fill = window - len(pending)
                            if fill > 0:
                                if fill > run:
                                    fill = run
                                pending.extend([entry] * fill)
                                run -= fill
                                i += fill
                                if run == 0:
                                    continue
                            if (
                                e_w == last_was_write
                                and bank_list[e_bank].open_row == e_row
                                and not (trefi and e_arr >= next_refresh)
                            ):
                                bank = bank_list[e_bank]
                                bank_busy = bank.busy_until_ps
                                # Same recurrence as enqueue_run: stable
                                # within three steps, arithmetic series
                                # after.
                                warm = 3 if run > 3 else run
                                completion = bus_free
                                lat = 0
                                for _ in range(warm):
                                    start = (
                                        e_arr if e_arr > bank_busy else bank_busy
                                    )
                                    bank_busy = start + burst
                                    data_ready = start + tcas
                                    completion = (
                                        data_ready if data_ready > bus_free
                                        else bus_free
                                    ) + burst
                                    bus_free = completion
                                    lat += completion - e_acc
                                tail = run - warm
                                if tail > 0:
                                    bank_busy += tail * burst
                                    bus_free += tail * burst
                                    lat += (
                                        tail * (completion - e_acc)
                                        + burst * tail * (tail + 1) // 2
                                    )
                                bank.busy_until_ps = bank_busy
                                bank.hits += run
                                row_hits += run
                                if bus_free > last_completion:
                                    last_completion = bus_free
                                served += run
                                if e_w:
                                    n_writes += run
                                else:
                                    n_reads += run
                                total_lat += lat
                                if e_kind == DEMAND:
                                    demand_lat += lat
                                    demand_n += run
                                elif e_kind == MIGRATION:
                                    migration_lat += lat
                                    migration_n += run
                                else:
                                    bookkeeping_lat += lat
                                    bookkeeping_n += run
                                closed_served += run
                                i = j
                                continue
                        # -- per-element: append + window-bounded drain -----
                        pending.append(entry)
                        i += 1
                        k = len(pending)
                        was_uni = uni and not gate
                        if not gate:
                            # An ordinary append breaks the twin shape.  A
                            # gated append whose episode preconditions failed
                            # (row closed, turnaround, refresh due) is
                            # another twin: the buffer stays uniform, and the
                            # uniform drain below would re-test exactly the
                            # conditions that just failed, so it is skipped.
                            prev = entry
                            uni = False
                            if k == 1:
                                break  # lone transaction: back to the fast path
                        # -- closed-form uniform-backlog drain --------------
                        # The second episode shape: the buffer holds twins
                        # of the *previous* element (a page-copy read run
                        # meeting its write phase, or a swap backlog meeting
                        # demand) while the newcomer's later arrival gates
                        # the drain.  The twin head is the oldest row hit,
                        # so every drain iteration provably services it — no
                        # promotion can fire against an equal-arrival head
                        # and the head check never triggers — which
                        # collapses the whole backlog into the enqueue_run
                        # recurrence instead of one _choose scan per
                        # serviced element.
                        if was_uni and k > 2:
                            twin = pending[0]
                            if (
                                twin[4] == last_was_write
                                and bank_list[twin[2]].open_row == twin[3]
                                and not (trefi and twin[0] >= next_refresh)
                            ):
                                e_arr, e_acc, e_bank, e_row, e_w, e_kind = twin
                                bank = bank_list[e_bank]
                                bank_busy = bank.busy_until_ps
                                need = k - window  # unconditional overflow
                                limit = k - 1  # the gated newcomer stays
                                done = 0
                                lat = 0
                                while done < limit:
                                    start = (
                                        e_arr if e_arr > bank_busy else bank_busy
                                    )
                                    if done >= need and start >= arrival:
                                        break
                                    bank_busy = start + burst
                                    data_ready = start + tcas
                                    completion = (
                                        data_ready if data_ready > bus_free
                                        else bus_free
                                    ) + burst
                                    bus_free = completion
                                    lat += completion - e_acc
                                    done += 1
                                if done:
                                    bank.busy_until_ps = bank_busy
                                    bank.hits += done
                                    row_hits += done
                                    if bus_free > last_completion:
                                        last_completion = bus_free
                                    served += done
                                    if e_w:
                                        n_writes += done
                                    else:
                                        n_reads += done
                                    total_lat += lat
                                    if e_kind == DEMAND:
                                        demand_lat += lat
                                        demand_n += done
                                    elif e_kind == MIGRATION:
                                        migration_lat += lat
                                        migration_n += done
                                    else:
                                        bookkeeping_lat += lat
                                        bookkeeping_n += done
                                    closed_served += done
                                    del pending[:done]
                                # The drain loops below are now a provable
                                # no-op: the survivors are gated twins plus
                                # the gated newcomer, within the window.
                                if len(pending) > 1:
                                    continue
                                break  # drained: the fast path takes over
                        while k > window:
                            _service(pending.pop(_choose_idx()))
                            k -= 1
                        while pending:
                            idx = _choose_idx()
                            cand = pending[idx]
                            busy = bank_list[cand[2]].busy_until_ps
                            start = cand[0] if cand[0] > busy else busy
                            if start >= arrival:
                                if idx != 0:
                                    head = pending[0]
                                    head_start = bank_list[head[2]].busy_until_ps
                                    if head[0] > head_start:
                                        head_start = head[0]
                                    if head_start < arrival:
                                        _service(pending.pop(0))
                                        continue
                                break
                            _service(pending.pop(idx))
                        if len(pending) <= 1:
                            break  # drained: the fast path takes over
                    # Per-element services in this stretch all went through
                    # _service; the episodes tracked their own count, so the
                    # indexed tally is the served delta minus the closed
                    # delta — no per-service increment on the drain loops.
                    indexed_served += served - closed_served - s0
                    continue  # outer loop: fast path or batch exhausted
                # -- contended stretch: indexed FR-FCFS engine --------------
                # Large windows (> SCAN_WINDOW_MAX) defeat the O(window)
                # scan, so the pending buffer is lifted into ``live`` — an
                # insertion-ordered seq -> entry map (seeded here, written
                # back on exit).  Dicts preserve insertion order, so
                # iterating ``live`` *is* the reference pending-list order,
                # the smallest live seq is the oldest transaction, and
                # removal is an O(1) pop instead of a mid-list shift.  The
                # deque chooser reproduces ``_choose`` decision for decision
                # (oldest row hit, unless the head has starved past
                # STARVATION_PS; else oldest same-direction; else head) over
                # ``by_br`` ((bank << 32) | row -> seq queue; the oldest row
                # hit is the smallest head over the banks with pending
                # entries, ``bank_count``) plus per-direction queues
                # ``dir_q`` for the write-batching fallback, all tombstoned
                # lazily by testing membership in ``live``.
                #
                # ``tests/test_dram_controller_batch.py`` and
                # ``tests/test_contended_differential.py`` prove equality
                # per service decision against the scalar reference for
                # both engines.
                live = {}
                by_br = {}
                dir_q = (deque(), deque())
                bank_count = {}
                seq = 0
                for entry in pending:
                    live[seq] = entry
                    e_bank = entry[2]
                    key = (e_bank << 32) | entry[3]
                    d = by_br.get(key)
                    if d is None:
                        by_br[key] = d = deque()
                    d.append(seq)
                    dir_q[1 if entry[4] else 0].append(seq)
                    bank_count[e_bank] = bank_count.get(e_bank, 0) + 1
                    seq += 1
                del pending[:]

                def _ichoose(starvation=self.STARVATION_PS):
                    """``_choose`` over the deque indices (large windows)."""
                    head_seq = next(iter(live))
                    if len(live) == 1:
                        return head_seq, head_seq
                    best = -1
                    for b in bank_count:
                        d = by_br.get((b << 32) | bank_list[b].open_row)
                        if d:
                            while d and d[0] not in live:
                                d.popleft()
                            if d:
                                s = d[0]
                                if best < 0 or s < best:
                                    best = s
                    if best >= 0:
                        if live[best][0] > live[head_seq][0] + starvation:
                            return head_seq, head_seq  # age promotion
                        return best, head_seq
                    q = dir_q[1 if last_was_write else 0]
                    while q and q[0] not in live:
                        q.popleft()
                    if q:
                        return q[0], head_seq
                    return head_seq, head_seq

                def _ipop(s):
                    """Drop seq ``s`` from the index; returns its entry."""
                    entry = live.pop(s)
                    b = entry[2]
                    c = bank_count[b] - 1
                    if c:
                        bank_count[b] = c
                    else:
                        del bank_count[b]
                    return entry

                prev = live[next(iter(live))]
                uni = True
                for v in live.values():
                    if v != prev:
                        uni = False
                        break
                s0 = served - closed_served
                while i < total:
                    arrival = arrivals[i]
                    entry = (
                        arrival, accounts[i], banks[i], rows[i], is_writes[i],
                        kind,
                    )
                    # -- closed-form backlog episode ------------------------
                    # enqueue_run's steady state, generalised to mid-batch.
                    # With the buffer holding only twins of the incoming
                    # element, appends below the window are provably
                    # service-free — the chosen head is a twin whose start
                    # ``max(arrival, busy)`` can never precede its own
                    # arrival, so the gated drain breaks at once — and the
                    # window fill collapses into a bulk append.  Once the
                    # window is full (and the twins' row open, the bus
                    # direction matching, no refresh due), every further
                    # append services exactly one twin head: a row hit at
                    # its own arrival, age promotion dormant under equal
                    # arrivals, the serviced head replaced by the identical
                    # incoming element.  A run of incoming twins therefore
                    # collapses into the same arithmetic-series recurrence
                    # enqueue_run uses.  Any precondition failing falls
                    # through to the exact per-element drain below.
                    #
                    # The gate is the incrementally maintained ``uni`` flag
                    # (see the scan engine above): established on stretch
                    # entry, preserved by the episode paths, killed by any
                    # ordinary append — so ordinary demand pays one local
                    # bool test here, never a buffer scan.
                    gate = uni and entry == prev
                    if gate:
                        twin = entry
                        e_arr, e_acc, e_bank, e_row, e_w, e_kind = entry
                        j = i + 1
                        while (
                            j < total
                            and arrivals[j] == e_arr
                            and banks[j] == e_bank
                            and rows[j] == e_row
                            and is_writes[j] == e_w
                            and accounts[j] == e_acc
                        ):
                            j += 1
                        run = j - i
                        fill = window - len(live)
                        if fill > 0:
                            if fill > run:
                                fill = run
                            for _ in range(fill):
                                live[seq] = twin
                                d = by_br.get((e_bank << 32) | e_row)
                                if d is None:
                                    by_br[(e_bank << 32) | e_row] = d = deque()
                                d.append(seq)
                                dir_q[1 if e_w else 0].append(seq)
                                bank_count[e_bank] = bank_count.get(e_bank, 0) + 1
                                seq += 1
                            run -= fill
                            i += fill
                            if run == 0:
                                continue
                        if (
                            e_w == last_was_write
                            and bank_list[e_bank].open_row == e_row
                            and not (trefi and e_arr >= next_refresh)
                        ):
                            bank = bank_list[e_bank]
                            bank_busy = bank.busy_until_ps
                            # Same recurrence as enqueue_run: stable within
                            # three steps, arithmetic series after.
                            warm = 3 if run > 3 else run
                            completion = bus_free
                            lat = 0
                            for _ in range(warm):
                                start = e_arr if e_arr > bank_busy else bank_busy
                                bank_busy = start + burst
                                data_ready = start + tcas
                                completion = (
                                    data_ready if data_ready > bus_free else bus_free
                                ) + burst
                                bus_free = completion
                                lat += completion - e_acc
                            tail = run - warm
                            if tail > 0:
                                bank_busy += tail * burst
                                bus_free += tail * burst
                                lat += (
                                    tail * (completion - e_acc)
                                    + burst * tail * (tail + 1) // 2
                                )
                            bank.busy_until_ps = bank_busy
                            bank.hits += run
                            row_hits += run
                            if bus_free > last_completion:
                                last_completion = bus_free
                            served += run
                            if e_w:
                                n_writes += run
                            else:
                                n_reads += run
                            total_lat += lat
                            if e_kind == DEMAND:
                                demand_lat += lat
                                demand_n += run
                            elif e_kind == MIGRATION:
                                migration_lat += lat
                                migration_n += run
                            else:
                                bookkeeping_lat += lat
                                bookkeeping_n += run
                            closed_served += run
                            i = j
                            continue
                    # -- per-element: append + window-bounded drain ---------
                    live[seq] = entry
                    e_bank = entry[2]
                    key = (e_bank << 32) | entry[3]
                    d = by_br.get(key)
                    if d is None:
                        by_br[key] = d = deque()
                    d.append(seq)
                    dir_q[1 if entry[4] else 0].append(seq)
                    bank_count[e_bank] = bank_count.get(e_bank, 0) + 1
                    seq += 1
                    i += 1
                    k = len(live)
                    was_uni = uni and not gate
                    if not gate:
                        # An ordinary append breaks the twin shape; a gated
                        # append whose episode preconditions failed is
                        # another twin (the uniform drain below would re-test
                        # the same failed conditions, so it is skipped).
                        prev = entry
                        uni = False
                        if k == 1:
                            break  # lone transaction: back to the fast path
                    # -- closed-form uniform-backlog drain ------------------
                    # The second episode shape: the buffer holds twins of
                    # the *previous* element (a page-copy read run meeting
                    # its write phase, or a swap backlog meeting demand)
                    # while the newcomer's later arrival gates the drain.
                    # The twin head is the oldest row hit, so every drain
                    # iteration provably services it — no promotion can fire
                    # against an equal-arrival head and the head check never
                    # triggers — which collapses the whole backlog into the
                    # enqueue_run recurrence instead of one _ichoose scan
                    # per serviced element.
                    if was_uni and k > 2:
                        twin = next(iter(live.values()))
                        if (
                            twin[4] == last_was_write
                            and bank_list[twin[2]].open_row == twin[3]
                            and not (trefi and twin[0] >= next_refresh)
                        ):
                            e_arr, e_acc, e_bank, e_row, e_w, e_kind = twin
                            bank = bank_list[e_bank]
                            bank_busy = bank.busy_until_ps
                            need = k - window  # unconditional overflow part
                            limit = k - 1  # the gated newcomer never drains
                            done = 0
                            lat = 0
                            while done < limit:
                                start = e_arr if e_arr > bank_busy else bank_busy
                                if done >= need and start >= arrival:
                                    break
                                bank_busy = start + burst
                                data_ready = start + tcas
                                completion = (
                                    data_ready if data_ready > bus_free else bus_free
                                ) + burst
                                bus_free = completion
                                lat += completion - e_acc
                                done += 1
                            if done:
                                bank.busy_until_ps = bank_busy
                                bank.hits += done
                                row_hits += done
                                if bus_free > last_completion:
                                    last_completion = bus_free
                                served += done
                                if e_w:
                                    n_writes += done
                                else:
                                    n_reads += done
                                total_lat += lat
                                if e_kind == DEMAND:
                                    demand_lat += lat
                                    demand_n += done
                                elif e_kind == MIGRATION:
                                    migration_lat += lat
                                    migration_n += done
                                else:
                                    bookkeeping_lat += lat
                                    bookkeeping_n += done
                                closed_served += done
                                c = bank_count[e_bank] - done
                                if c:
                                    bank_count[e_bank] = c
                                else:
                                    del bank_count[e_bank]
                                while done:
                                    del live[next(iter(live))]
                                    done -= 1
                            # The drain loop below is now a provable no-op:
                            # the survivors are gated twins (their chooser
                            # pick is the gated twin head) plus the gated
                            # newcomer, and the buffer is within the
                            # window, so skip straight past it.
                            if len(live) > 1:
                                continue
                            break  # drained: the fast path takes over
                    while len(live) > window:
                        _service(_ipop(_ichoose()[0]))
                    while live:
                        s, head_seq = _ichoose()
                        cand = live[s]
                        busy = bank_list[cand[2]].busy_until_ps
                        start = cand[0] if cand[0] > busy else busy
                        if start >= arrival:
                            if s != head_seq:
                                head = live[head_seq]
                                head_start = bank_list[head[2]].busy_until_ps
                                if head[0] > head_start:
                                    head_start = head[0]
                                if head_start < arrival:
                                    _service(_ipop(head_seq))
                                    continue
                            break
                        _service(_ipop(s))
                    if len(live) <= 1:
                        break  # drained: the fast path takes over
                # Per-element services all went through _service and the
                # episodes tracked their own count, so the indexed tally is
                # the served delta minus the closed delta.
                indexed_served += served - closed_served - s0
                # Write the survivors back in append order — ``live`` keeps
                # insertion order through deletions, so its values are the
                # reference pending list verbatim.
                if live:
                    pending.extend(live.values())

        finally:
            self.bus_free_ps = bus_free
            self._last_was_write = last_was_write
            self._next_refresh_ps = next_refresh
            self.refreshes = refreshes
            self.last_completion_ps = last_completion
            stats = self.stats
            stats.served += served
            stats.reads += n_reads
            stats.writes += n_writes
            stats.row_hits += row_hits
            stats.total_latency_ps += total_lat
            stats.demand_latency_ps += demand_lat
            stats.migration_latency_ps += migration_lat
            stats.bookkeeping_latency_ps += bookkeeping_lat
            stats.demand_count += demand_n
            stats.migration_count += migration_n
            stats.bookkeeping_count += bookkeeping_n
            if closed_served or indexed_served or scalar_served:
                paths = self.service_paths
                paths.closed_form_served += closed_served
                paths.indexed_served += indexed_served
                paths.scalar_fallback_served += scalar_served

    def enqueue_run(
        self,
        bank: int,
        row: int,
        is_write: bool,
        arrival_ps: int,
        count: int,
        kind: int = DEMAND,
    ) -> None:
        """``count`` identical :meth:`enqueue` calls, bit for bit.

        The swap datapath issues page copies as runs of same-bank
        same-row transactions sharing one arrival (32 reads then 32
        writes per page side at paper scale).  Equal arrivals defeat
        :meth:`enqueue_batch`'s idle-drain fast path: the buffer fills
        to the window, and from then on every append provably services
        exactly one pending entry — FR-FCFS picks the head (it is a row
        hit at the head's own arrival; age promotion cannot fire between
        equal arrivals), which is a *twin* of the incoming element, so
        the buffer's content never changes.  This entry point feeds
        elements through :meth:`enqueue` until that steady state holds
        (window-full buffer of identical entries, row open, bus
        direction matching, no refresh boundary pending), then services
        the remaining twins in a closed row-hit loop.
        """
        if count <= 0:
            return
        if not self._dirty:
            self._dirty = True
            self._dirty_sink.add(self._dirty_key)
        pending = self._pending
        window = self.window
        bank_obj = self.banks[bank]
        entry = (arrival_ps, arrival_ps, bank, row, is_write, kind)
        first = True
        while count:
            if (
                window > 1
                and len(pending) == window
                and bank_obj.open_row == row
                and is_write == self._last_was_write
                and not (self._trefi_ps and arrival_ps >= self._next_refresh_ps)
                and all(p == entry for p in pending)
            ):
                break
            self.enqueue(bank, row, is_write, arrival_ps, kind)
            count -= 1
            if first:
                first = False
                # The first call's drain loop either emptied the buffer
                # or broke because its chosen head starts at or after our
                # arrival; with nothing serviced in between, every
                # further equal-arrival enqueue below the window repeats
                # that break (appending can only add row hits that start
                # at max(arrival, busy) >= arrival), so the reference
                # behaviour of the next ``window - len`` calls is a pure
                # append each — do them in one extend.
                bulk = window - len(pending)
                if bulk > count:
                    bulk = count
                if bulk > 0:
                    pending.extend([entry] * bulk)
                    count -= bulk
        if not count:
            return
        # Steady state: each remaining element is an append + one
        # service of its pending twin — a guaranteed row hit whose
        # timing is the recurrence below (cf. the _service clone in
        # enqueue_batch with open_row == row and no direction change).
        burst = self._burst_ps
        tcas = self.timing.tcas_ps
        bank_busy = bank_obj.busy_until_ps
        bus_free = self.bus_free_ps
        total_lat = 0
        # The recurrence stabilises within three steps: from the second
        # element start advances by exactly one burst, and the bus
        # excess e = bus_free - (start + tcas) maps to max(e, 0), which
        # is a fixed point from the third element on.  Everything after
        # is an arithmetic series: completions one burst apart.
        # The recurrence mutates the hoisted bank/bus cursors in
        # place; the finally keeps the controller consistent even if
        # a bad column raises mid-run.
        try:
            head = 3 if count > 3 else count
            completion = bus_free
            for _ in range(head):
                start = arrival_ps if arrival_ps > bank_busy else bank_busy
                bank_busy = start + burst
                data_ready = start + tcas
                completion = (data_ready if data_ready > bus_free else bus_free) + burst
                bus_free = completion
                total_lat += completion - arrival_ps
            tail = count - head
            if tail > 0:
                bank_busy += tail * burst
                bus_free += tail * burst
                total_lat += tail * (completion - arrival_ps) + burst * tail * (tail + 1) // 2
        finally:
            bank_obj.busy_until_ps = bank_busy
            self.bus_free_ps = bus_free
        bank_obj.hits += count
        if bus_free > self.last_completion_ps:
            self.last_completion_ps = bus_free
        stats = self.stats
        stats.served += count
        if is_write:
            stats.writes += count
        else:
            stats.reads += count
        stats.row_hits += count
        stats.total_latency_ps += total_lat
        if kind == DEMAND:
            stats.demand_latency_ps += total_lat
            stats.demand_count += count
        elif kind == MIGRATION:
            stats.migration_latency_ps += total_lat
            stats.migration_count += count
        else:
            stats.bookkeeping_latency_ps += total_lat
            stats.bookkeeping_count += count
        self.service_paths.closed_form_served += count

    def flush(self) -> int:
        """Service every buffered transaction; return last completion time."""
        if not self._dirty:
            self._dirty = True
            self._dirty_sink.add(self._dirty_key)
        while self._pending:
            self._service_one()
        return self.last_completion_ps

    def block_until(self, ps: int) -> None:
        """Make the whole channel unavailable until ``ps``.

        Models coarse stalls such as HMA's per-interval OS/sorting
        penalty: every bank and the data bus are pushed to at least
        ``ps``.  Already-buffered transactions are serviced first so the
        stall applies at a well-defined point in time.
        """
        self.flush()
        if not self._dirty:
            self._dirty = True
            self._dirty_sink.add(self._dirty_key)
        if self.bus_free_ps < ps:
            self.bus_free_ps = ps
        for bank in self.banks:
            if bank.busy_until_ps < ps:
                bank.busy_until_ps = ps

    @property
    def pending_count(self) -> int:
        """Number of buffered, not-yet-serviced transactions."""
        return len(self._pending)

    def row_buffer_stats(self) -> "tuple[int, int]":
        """Return ``(row_hits, total_accesses)`` summed over banks."""
        hits = sum(b.hits for b in self.banks)
        total = sum(b.total_accesses for b in self.banks)
        return hits, total

    # -- internals -------------------------------------------------------

    #: FR-FCFS fairness bound: once the oldest pending transaction has
    #: waited this long past a younger candidate, it is serviced first
    #: regardless of row-hit status (real controllers age-promote to
    #: stop conflict requests starving behind an open-row stream).
    STARVATION_PS = 500_000  # 500 ns

    #: Largest window the batched contended engine serves with the
    #: direct-scan chooser; larger windows switch to the deque-indexed
    #: chooser whose per-decision cost stays O(pending banks).
    SCAN_WINDOW_MAX = 16

    def _choose(self) -> int:
        """Index of the next transaction to service.

        FR-FCFS with write batching and age promotion: the oldest row
        hit wins, unless the oldest transaction overall has been
        starving past the fairness bound; failing a hit, the oldest
        transaction moving in the bus's current direction (controllers
        drain reads and writes in runs to amortise the turnaround
        penalty); failing that, the oldest overall.  The pending list
        is append-ordered, so lower index is always older.
        """
        pending = self._pending
        if len(pending) == 1:
            return 0
        banks = self.banks
        promote_past = pending[0][0] + self.STARVATION_PS
        same_direction = -1
        direction = self._last_was_write
        for idx, cand in enumerate(pending):
            if banks[cand[2]].open_row == cand[3]:
                if cand[0] > promote_past:
                    return 0  # age promotion beats the row hit
                return idx
            if same_direction < 0 and cand[4] == direction:
                same_direction = idx
        return same_direction if same_direction >= 0 else 0

    def _service_one(self) -> None:
        self._service_at(self._choose())

    def _service_at(self, chosen_idx: int) -> None:
        arrival_ps, account_ps, bank_idx, row, is_write, kind = self._pending.pop(
            chosen_idx
        )
        # Refresh: every tREFI the channel pauses for tRFC, all banks
        # unavailable.  Applied lazily at service time: elapsed
        # boundaries are fast-forwarded and only the latest one's
        # stall window [boundary, boundary + tRFC] can still delay this
        # transaction — refreshes that completed while the channel was
        # idle cost nothing, exactly as in hardware.
        trefi_ps = self._trefi_ps
        if trefi_ps and arrival_ps >= self._next_refresh_ps:
            elapsed = (arrival_ps - self._next_refresh_ps) // trefi_ps
            boundary = self._next_refresh_ps + elapsed * trefi_ps
            self.refreshes += elapsed + 1
            self._next_refresh_ps = boundary + trefi_ps
            stall_end = boundary + self._trfc_ps
            if self.bus_free_ps < stall_end:
                self.bus_free_ps = stall_end
            for bank in self.banks:
                if bank.busy_until_ps < stall_end:
                    bank.busy_until_ps = stall_end

        data_ready, outcome = self.banks[bank_idx].access(
            row, arrival_ps, self.timing, self._burst_ps
        )
        bus_free = self.bus_free_ps
        if is_write != self._last_was_write:
            bus_free += self._turnaround_ps
            self._last_was_write = is_write
        completion = (data_ready if data_ready > bus_free else bus_free) + self._burst_ps
        self.bus_free_ps = completion
        if completion > self.last_completion_ps:
            self.last_completion_ps = completion

        stats = self.stats
        stats.served += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        if outcome == ROW_HIT:
            stats.row_hits += 1
        latency = completion - account_ps
        stats.total_latency_ps += latency
        if kind == DEMAND:
            stats.demand_latency_ps += latency
            stats.demand_count += 1
        elif kind == MIGRATION:
            stats.migration_latency_ps += latency
            stats.migration_count += 1
        else:
            stats.bookkeeping_latency_ps += latency
            stats.bookkeeping_count += 1
