"""Oracle-study behaviour across the synthetic workload classes.

These integration tests pin the Section 3 signatures at the class
level, independent of the per-benchmark tuning in ``repro.trace.spec``:
the library's workload primitives must *themselves* produce the
MEA-vs-FC regimes the paper describes.
"""

import pytest

from repro.common.rng import DeterministicRng
from repro.tracking import run_oracle_study
from repro.trace.record import LINE_BYTES, Trace
from repro.trace.synth import HotColdPattern, StreamPattern, WavefrontPattern, ZipfPattern

INTERVAL = 2000


def trace_from(pattern, accesses=24_000, seed=5):
    rng = DeterministicRng(seed, "oracle-class")
    records = []
    for i in range(accesses):
        page, line, is_write = pattern.next_access(rng)
        records.append((i * 9_000, page * 2048 + line * LINE_BYTES, int(is_write), 0))
    return Trace(name="class", records=records)


def study(pattern, **kwargs):
    trace = trace_from(pattern, **kwargs)
    return run_oracle_study(trace.page_sequence(), interval_requests=INTERVAL)


class TestStableSkew:
    """The cactus regime: exact counting wins."""

    def test_fc_matches_or_beats_mea(self):
        result = study(ZipfPattern(3000, alpha=1.3, shuffle=False))
        assert sum(result.fc_future_hits) >= sum(result.mea_future_hits) - 0.5

    def test_both_predict_well(self):
        result = study(ZipfPattern(3000, alpha=1.3, shuffle=False))
        assert result.fc_future_hits[0] > 7
        assert result.mea_future_hits[0] > 6


class TestRotatingHotSet:
    """The xalanc regime: recency wins."""

    def test_mea_beats_fc(self):
        pattern = HotColdPattern(
            6000, hot_pages=500, hot_fraction=0.92, hot_alpha=1.15,
            rotate_period=150, rotate_step=10,
        )
        result = study(pattern)
        assert sum(result.mea_future_hits) > sum(result.fc_future_hits)


class TestPureStream:
    """The bwaves regime: nobody can predict, FC exactly zero."""

    def test_fc_zero(self):
        result = study(StreamPattern(100_000, lines_per_visit=4))
        assert sum(result.fc_future_hits) == 0.0

    def test_mea_near_zero(self):
        result = study(StreamPattern(100_000, lines_per_visit=4))
        assert sum(result.mea_future_hits) <= 1.0


class TestWavefront:
    """The lbm regime: FC's top pages are finished; MEA scores."""

    def test_mea_beats_fc_with_fc_tier1_failing(self):
        pattern = WavefrontPattern(50_000, zone_pages=30, advance_period=15)
        result = study(pattern)
        assert result.fc_future_hits[0] <= 1.0
        assert sum(result.mea_future_hits) > sum(result.fc_future_hits)


class TestCountingVersusPrediction:
    """The paper's core juxtaposition on one workload: MEA counts worse
    than FC (trivially, FC is perfect) yet predicts at least as well
    under churn."""

    def test_juxtaposition(self):
        # Enough cold traffic that decrement rounds churn MEA's table
        # (the counting weakness), plus rank rotation (the prediction
        # strength) — both signatures on one workload.
        pattern = HotColdPattern(
            6000, hot_pages=500, hot_fraction=0.70, hot_alpha=1.15,
            rotate_period=150, rotate_step=10,
        )
        result = study(pattern)
        # Counting: strictly below FC's perfect 1.0 somewhere.
        assert min(result.counting_accuracy) < 1.0
        # Prediction: MEA ahead in total despite the worse counting.
        assert sum(result.mea_future_hits) > sum(result.fc_future_hits)
