"""Sweep progress: per-cell timing, cache hit/miss counters, live line.

The tracker is deliberately dumb about *what* is running — it counts
cells, separates cache hits from simulated misses, and accumulates
wall-clock time spent simulating.  The live ``N/M cells (hit rate X%)``
line is written to ``stream`` (stderr by default) and only when that
stream is a terminal, so piped and captured output stays clean and the
tables on stdout remain byte-identical between cold, warm, serial and
parallel runs.
"""

from __future__ import annotations

import sys
from typing import List, Optional, TextIO, Tuple


class ProgressTracker:
    """Counters and timings for one or more sweep runs.

    One tracker may span several :meth:`~repro.runner.pool.SweepRunner.map`
    calls (e.g. ``repro sweep`` aggregates every artefact it regenerates
    into a single hit-rate summary).
    """

    def __init__(
        self, stream: Optional[TextIO] = None, live: Optional[bool] = None
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if live is None:
            live = bool(getattr(self.stream, "isatty", lambda: False)())
        self.live = live
        self.total = 0
        self.done = 0
        self.hits = 0
        self.misses = 0
        self.simulate_seconds = 0.0
        #: per-cell records: (label, seconds, was_cache_hit)
        self.timings: List[Tuple[str, float, bool]] = []

    # -- event feed --------------------------------------------------------

    def begin(self, cells: int) -> None:
        """Announce ``cells`` more cells of upcoming work."""
        self.total += cells
        self._render()

    def cell_done(self, label: str, hit: bool, seconds: float) -> None:
        """Record one finished cell (a cache hit or a simulated miss)."""
        self.done += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            self.simulate_seconds += seconds
        self.timings.append((label, seconds, hit))
        self._render()

    def finish(self) -> None:
        """Terminate the live line (no-op when not rendering)."""
        if self.live and self.total:
            self.stream.write("\r" + self.status_line() + "\n")
            self.stream.flush()

    # -- reporting ---------------------------------------------------------

    def hit_rate(self) -> float:
        """Fraction of completed cells served from the cache."""
        return self.hits / self.done if self.done else 0.0

    def status_line(self) -> str:
        """The live progress line: ``N/M cells (hit rate X%)``."""
        return f"{self.done}/{self.total} cells (hit rate {self.hit_rate():.0%})"

    def summary(self) -> str:
        """One-line post-run summary (hit rate + time spent simulating)."""
        return (
            f"{self.done}/{self.total} cells, {self.hits} cache hits "
            f"(hit rate {self.hit_rate():.0%}), "
            f"{self.simulate_seconds:.1f}s simulating"
        )

    def _render(self) -> None:
        if self.live and self.total:
            self.stream.write("\r" + self.status_line())
            self.stream.flush()
