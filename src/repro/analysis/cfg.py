"""Per-function control-flow graphs over the Python AST.

The deep lint checkers (:mod:`repro.analysis.writeback` and friends)
need to *prove* statements execute on every path out of a function —
including the paths an exception takes — so this module builds, per
function, a statement-level CFG with three edge kinds:

* ``normal`` — ordinary fall-through, branch, and loop edges;
* ``exception`` — from every statement that may raise to the innermost
  enclosing handler (``except`` entries and/or ``finally`` entry), or
  to the exceptional function exit when nothing encloses it;
* ``finally`` — edges that route control *through* a ``finally`` body:
  normal completion of a ``try`` region falling into the ``finally``,
  and the abrupt-completion paths (``return`` / ``break`` /
  ``continue``) that must run the ``finally`` before reaching their
  real target.

Handled statement forms: ``try/except/else/finally`` (including
``return`` inside ``try`` routed through the ``finally``, and ``raise``
re-raised from an ``except`` handler), ``with`` (no ``__exit__``
suppression is modelled: body exceptions propagate), ``while/else`` and
``for/else`` (the ``else`` runs only on normal loop exit; ``break``
bypasses it), early ``return`` / ``raise`` / ``break`` / ``continue``.
Comprehensions are expressions inside their statement's node, and
nested ``def`` / ``lambda`` / ``class`` bodies are *not* traversed —
each function is its own scope and callers recurse explicitly
(:func:`iter_function_scopes`).

Exactness posture: the graph **over-approximates** feasible paths.  A
``finally`` body is built once and its exit fans out to every
continuation that can enter it, and almost every statement is treated
as able to raise.  Extra paths can only make a must-pass query fail, so
the checkers built on top err toward findings, never toward silence.
The one deliberate refinement is :func:`stmt_may_raise`: assignments of
names/constants to names or single-level attributes (``obj.attr =
local``) cannot raise, which is what lets a ``finally`` body made of
such write-backs prove that *all* of them run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

#: Edge kinds (see module docstring).
NORMAL = "normal"
EXCEPTION = "exception"
FINALLY = "finally"

#: Synthetic node kinds; ``stmt`` nodes carry a real AST statement.
ENTRY = "entry"
EXIT = "exit"
JOIN = "join"
STMT = "stmt"

#: isinstance tuple for function-definition statements; use
#: :data:`FunctionDefNode` when annotating (tuples are not types).
FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)
FunctionDefNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


@dataclass
class CFGNode:
    """One CFG node: a statement, or a synthetic entry/exit/join point."""

    id: int
    kind: str
    stmt: Optional[ast.stmt] = None
    #: True when the node sits inside some ``finally`` body.
    in_finally: bool = False

    @property
    def line(self) -> int:
        return self.stmt.lineno if self.stmt is not None else 0


@dataclass
class FunctionCFG:
    """CFG of one function body (``entry``/``exit`` are synthetic)."""

    func: ast.AST
    nodes: Dict[int, CFGNode] = field(default_factory=dict)
    succ: Dict[int, List[Tuple[int, str]]] = field(default_factory=dict)
    pred: Dict[int, List[Tuple[int, str]]] = field(default_factory=dict)
    entry: int = 0
    exit: int = 0

    def node_of(self, stmt: ast.stmt) -> Optional[int]:
        """Node id of ``stmt`` (statements map 1:1 onto nodes)."""
        for node in self.nodes.values():
            if node.stmt is stmt:
                return node.id
        return None

    def stmt_nodes(self) -> Iterator[CFGNode]:
        for node in self.nodes.values():
            if node.kind == STMT:
                yield node

    def successors(self, node_id: int, *, kinds: Optional[Tuple[str, ...]] = None):
        for dst, kind in self.succ.get(node_id, ()):
            if kinds is None or kind in kinds:
                yield dst


def _is_simple_expr(node: ast.expr) -> bool:
    """True when evaluating ``node`` cannot raise (names and constants)."""
    if isinstance(node, (ast.Constant, ast.Name)):
        return True
    if isinstance(node, ast.Tuple):
        return all(_is_simple_expr(elt) for elt in node.elts)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return isinstance(node.operand, ast.Constant)
    return False


def _is_simple_store(target: ast.expr) -> bool:
    """Name stores and ``name.attr`` stores cannot raise in this model."""
    if isinstance(target, ast.Name):
        return True
    if isinstance(target, ast.Attribute):
        # Only a single attribute hop on a plain name: deeper chains
        # perform attribute *loads* first, which may raise.
        return isinstance(target.value, ast.Name)
    if isinstance(target, ast.Tuple):
        return all(_is_simple_store(elt) for elt in target.elts)
    return False


def stmt_may_raise(stmt: ast.stmt) -> bool:
    """Conservative may-raise test; False only for provably safe forms.

    The refinement that matters: ``obj.attr = local`` / ``x = CONST``
    cannot raise, so a ``finally`` body written as a run of such
    write-backs provably executes in full once entered.
    """
    if isinstance(stmt, (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)):
        return False
    if isinstance(stmt, ast.Assign):
        return not (
            all(_is_simple_store(t) for t in stmt.targets)
            and _is_simple_expr(stmt.value)
        )
    if isinstance(stmt, ast.AnnAssign):
        return not (
            _is_simple_store(stmt.target)
            and (stmt.value is None or _is_simple_expr(stmt.value))
        )
    if isinstance(stmt, ast.Return):
        return not (stmt.value is None or _is_simple_expr(stmt.value))
    if isinstance(stmt, ast.Expr):
        return not _is_simple_expr(stmt.value)
    if isinstance(stmt, FunctionNode):
        # Binding a def is safe unless decorators/defaults run code.
        args = stmt.args
        return bool(
            stmt.decorator_list
            or args.defaults
            or [d for d in args.kw_defaults if d is not None]
        )
    return True


class _FinallyFrame:
    """One ``finally`` body, built once, fanning out per continuation."""

    __slots__ = ("entry", "router", "_used")

    def __init__(self, entry: int, router: int) -> None:
        self.entry = entry
        self.router = router
        self._used: Set[Tuple[int, str]] = set()

    def continue_to(self, builder: "_Builder", target: int, kind: str) -> None:
        if (target, kind) not in self._used:
            self._used.add((target, kind))
            builder._edge(self.router, target, kind)


class _LoopFrame:
    __slots__ = ("header", "exit_join")

    def __init__(self, header: int, exit_join: int) -> None:
        self.header = header
        self.exit_join = exit_join


class _Builder:
    def __init__(self, func: ast.AST) -> None:
        self.cfg = FunctionCFG(func=func)
        self._next_id = 0
        self._finally_depth = 0
        self.cfg.entry = self._new(ENTRY)
        self.cfg.exit = self._new(EXIT)

    # -- graph primitives ------------------------------------------------

    def _new(self, kind: str, stmt: Optional[ast.stmt] = None) -> int:
        nid = self._next_id
        self._next_id += 1
        self.cfg.nodes[nid] = CFGNode(
            nid, kind, stmt, in_finally=self._finally_depth > 0
        )
        self.cfg.succ[nid] = []
        self.cfg.pred[nid] = []
        return nid

    def _edge(self, src: int, dst: int, kind: str) -> None:
        if (dst, kind) not in self.cfg.succ[src]:
            self.cfg.succ[src].append((dst, kind))
            self.cfg.pred[dst].append((src, kind))

    def _connect(self, frontier: List[Tuple[int, str]], dst: int) -> None:
        for src, kind in frontier:
            self._edge(src, dst, kind)

    # -- abrupt-jump routing through enclosing finally bodies ------------

    def _route(
        self,
        src: int,
        frames: Tuple[object, ...],
        target_kind: str,
    ) -> None:
        """Edge from ``src`` to its return/break/continue target, running
        every ``finally`` between the statement and that target."""
        fins: List[_FinallyFrame] = []
        target: Optional[int] = None
        for frame in reversed(frames):
            if isinstance(frame, _LoopFrame) and target_kind in ("break", "continue"):
                target = frame.exit_join if target_kind == "break" else frame.header
                break
            if isinstance(frame, _FinallyFrame):
                fins.append(frame)
        if target is None:
            target = self.cfg.exit  # return (or stray break: grammar forbids)
        if not fins:
            self._edge(src, target, NORMAL)
            return
        self._edge(src, fins[0].entry, FINALLY)
        for inner, outer in zip(fins, fins[1:]):
            inner.continue_to(self, outer.entry, FINALLY)
        fins[-1].continue_to(self, target, FINALLY)

    # -- statement lists -------------------------------------------------

    def build_body(
        self,
        stmts: List[ast.stmt],
        frontier: List[Tuple[int, str]],
        exc: Tuple[int, ...],
        frames: Tuple[object, ...],
    ) -> Tuple[Optional[int], List[Tuple[int, str]]]:
        """Build ``stmts``; returns ``(entry_node, out_frontier)``.

        ``exc`` is the tuple of nodes a raising statement edges to;
        ``frames`` the stack of enclosing loop/finally frames.
        """
        entry: Optional[int] = None
        for stmt in stmts:
            node, frontier = self._build_stmt(stmt, frontier, exc, frames)
            if entry is None:
                entry = node
            if not frontier:
                break  # unreachable code after an abrupt statement
        return entry, frontier

    def _raise_edges(self, nid: int, stmt: ast.stmt, exc: Tuple[int, ...]) -> None:
        if stmt_may_raise(stmt):
            for target in exc:
                self._edge(nid, target, EXCEPTION)

    def _build_stmt(
        self,
        stmt: ast.stmt,
        frontier: List[Tuple[int, str]],
        exc: Tuple[int, ...],
        frames: Tuple[object, ...],
    ) -> Tuple[int, List[Tuple[int, str]]]:
        nid = self._new(STMT, stmt)
        self._connect(frontier, nid)
        if not isinstance(stmt, ast.Try):
            # Headers evaluate code before their body (if/while tests,
            # for iterators, with __enter__), so their raises go to the
            # *enclosing* context.  A try header executes nothing: its
            # body's statements own every exception edge.
            self._raise_edges(nid, stmt, exc)

        if isinstance(stmt, ast.Return):
            self._route(nid, frames, "return")
            return nid, []
        if isinstance(stmt, ast.Break):
            self._route(nid, frames, "break")
            return nid, []
        if isinstance(stmt, ast.Continue):
            self._route(nid, frames, "continue")
            return nid, []
        if isinstance(stmt, ast.Raise):
            # Covered by _raise_edges (Raise always may-raise); no
            # normal successor.
            return nid, []

        if isinstance(stmt, ast.If):
            _, then_out = self.build_body(stmt.body, [(nid, NORMAL)], exc, frames)
            if stmt.orelse:
                _, else_out = self.build_body(stmt.orelse, [(nid, NORMAL)], exc, frames)
            else:
                else_out = [(nid, NORMAL)]
            return nid, then_out + else_out

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return nid, self._build_loop(stmt, nid, exc, frames)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            # No __exit__ suppression modelled: body exceptions keep
            # propagating to ``exc``.
            _, body_out = self.build_body(stmt.body, [(nid, NORMAL)], exc, frames)
            return nid, body_out

        if isinstance(stmt, ast.Try):
            return nid, self._build_try(stmt, nid, exc, frames)

        return nid, [(nid, NORMAL)]

    def _build_loop(
        self,
        stmt: ast.stmt,
        header: int,
        exc: Tuple[int, ...],
        frames: Tuple[object, ...],
    ) -> List[Tuple[int, str]]:
        exit_join = self._new(JOIN)
        loop_frames = frames + (_LoopFrame(header, exit_join),)
        _, body_out = self.build_body(stmt.body, [(header, NORMAL)], exc, loop_frames)
        self._connect(body_out, header)
        # The no-more-iterations edge: a ``while`` over a truthy
        # constant never takes it; ``for`` always can.
        test = stmt.test if isinstance(stmt, ast.While) else None
        infinite = isinstance(test, ast.Constant) and bool(test.value)
        if not infinite:
            if stmt.orelse:
                _, else_out = self.build_body(
                    stmt.orelse, [(header, NORMAL)], exc, frames
                )
                self._connect(else_out, exit_join)
            else:
                self._edge(header, exit_join, NORMAL)
        if not self.cfg.pred[exit_join]:
            return []  # while True with no break: nothing follows
        return [(exit_join, NORMAL)]

    def _build_try(
        self,
        stmt: ast.Try,
        nid: int,
        exc: Tuple[int, ...],
        frames: Tuple[object, ...],
    ) -> List[Tuple[int, str]]:
        frame: Optional[_FinallyFrame] = None
        if stmt.finalbody:
            # Build the finally body FIRST (its exception context is the
            # *outer* one), so inner regions can route edges into it.
            self._finally_depth += 1
            fin_entry, fin_out = self.build_body(stmt.finalbody, [], exc, frames)
            self._finally_depth -= 1
            router = self._new(JOIN)
            self._connect(fin_out, router)
            assert fin_entry is not None  # grammar: finalbody is non-empty
            frame = _FinallyFrame(fin_entry, router)
            # Completed-finally exception propagation continues outward.
            for target in exc:
                frame.continue_to(self, target, EXCEPTION)
            inner_frames = frames + (frame,)
            unmatched: Tuple[int, ...] = (fin_entry,)
        else:
            inner_frames = frames
            unmatched = exc

        handler_ids: List[int] = []
        handler_outs: List[Tuple[int, str]] = []
        for handler in stmt.handlers:
            hid = self._new(STMT, handler)  # type: ignore[arg-type]
            handler_ids.append(hid)
            # Evaluating the handler's type / binding may itself raise,
            # and a ``raise`` inside the handler propagates outward (or
            # into the finally), never to a sibling handler.
            for target in unmatched:
                self._edge(hid, target, EXCEPTION)
            _, h_out = self.build_body(
                handler.body, [(hid, NORMAL)], unmatched, inner_frames
            )
            handler_outs.extend(h_out)

        body_exc = tuple(handler_ids) + unmatched
        body_entry, body_out = self.build_body(
            stmt.body, [(nid, NORMAL)], body_exc, inner_frames
        )
        if body_entry is None:
            body_out = [(nid, NORMAL)]
        if stmt.orelse:
            _, body_out = self.build_body(stmt.orelse, body_out, unmatched, inner_frames)

        completed = body_out + handler_outs
        if frame is None:
            return completed
        for src, kind in completed:
            self._edge(src, frame.entry, FINALLY)
        return [(frame.router, FINALLY)]


def build_cfg(func: ast.AST) -> FunctionCFG:
    """Build the CFG of one ``FunctionDef`` / ``AsyncFunctionDef`` body."""
    builder = _Builder(func)
    cfg = builder.cfg
    _, out = builder.build_body(
        list(func.body), [(cfg.entry, NORMAL)], (cfg.exit,), ()
    )
    builder._connect(out, cfg.exit)
    return cfg


# -- scope walking -----------------------------------------------------------


def iter_function_scopes(
    tree: ast.AST, prefix: str = ""
) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(qualname, node)`` for every function scope in ``tree``,
    including methods and nested functions (each is its own CFG scope)."""
    body = getattr(tree, "body", [])
    for child in body if isinstance(body, list) else []:
        if isinstance(child, FunctionNode):
            qual = f"{prefix}{child.name}"
            yield qual, child
            yield from iter_function_scopes(child, prefix=f"{qual}.")
        elif isinstance(child, ast.ClassDef):
            yield from iter_function_scopes(child, prefix=f"{prefix}{child.name}.")


# -- per-statement name extraction (scope-aware) -----------------------------


def _walk_same_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function scopes.

    Comprehension bodies ARE walked (their loads close over this
    scope); comprehension *targets* are excluded by the callers below
    because Python 3 gives them their own scope.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _SCOPE_NODES):
                # Defaults and decorators evaluate here; bodies do not.
                if isinstance(child, ast.Lambda):
                    stack.extend(
                        d for d in child.args.defaults
                    )
                    stack.extend(
                        d for d in child.args.kw_defaults if d is not None
                    )
                else:
                    stack.extend(child.decorator_list)
                    stack.extend(child.args.defaults)
                    stack.extend(d for d in child.args.kw_defaults if d is not None)
                continue
            stack.append(child)


def _comprehension_targets(nodes: List[ast.AST]) -> Set[str]:
    names: Set[str] = set()
    for node in nodes:
        for sub in ast.walk(node):
            if isinstance(sub, _COMPREHENSIONS):
                for gen in sub.generators:
                    for t in ast.walk(gen.target):
                        if isinstance(t, ast.Name):
                            names.add(t.id)
    return names


def _own_nodes(stmt: ast.stmt) -> List[ast.AST]:
    """The sub-expressions evaluated *by this CFG node itself* — compound
    statements contribute only their header (their bodies are separate
    nodes), and nested function/class bodies are separate scopes."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        parts: List[ast.AST] = []
        for item in stmt.items:
            parts.append(item.context_expr)
            if item.optional_vars is not None:
                parts.append(item.optional_vars)
        return parts
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, FunctionNode + (ast.ClassDef,)):
        parts = list(stmt.decorator_list)
        if isinstance(stmt, FunctionNode):
            parts.extend(stmt.args.defaults)
            parts.extend(d for d in stmt.args.kw_defaults if d is not None)
        return parts
    return [stmt]


def stmt_defs(stmt: ast.stmt) -> Set[str]:
    """Names (re)bound by this CFG node in the enclosing function scope."""
    defs: Set[str] = set()
    own = _own_nodes(stmt)
    comp_locals = _comprehension_targets(own)
    for part in own:
        for node in _walk_same_scope(part):
            if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
                if node.id not in comp_locals:
                    defs.add(node.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    defs.add(alias.asname or alias.name.split(".")[0])
    if isinstance(stmt, FunctionNode + (ast.ClassDef,)):
        defs.add(stmt.name)
    if isinstance(stmt, ast.ExceptHandler) and stmt.name:
        defs.add(stmt.name)
    return defs


def stmt_uses(stmt: ast.stmt) -> Set[str]:
    """Names loaded by this CFG node (comprehension targets excluded)."""
    uses: Set[str] = set()
    own = _own_nodes(stmt)
    comp_locals = _comprehension_targets(own)
    for part in own:
        for node in _walk_same_scope(part):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id not in comp_locals:
                    uses.add(node.id)
    return uses
