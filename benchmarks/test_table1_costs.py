"""Table 1 — building-block cost breakdown, computed at paper scale.

Checks the storage-cost headlines: MemPod's MEA unit costs 736 B total
(the paper's 4 pods x 64 x 23 bits) — ~12,800x below HMA's 9 MB of full
counters and ~712x below THM's 512 kB of competing counters.
"""

from conftest import emit

from repro.experiments import compute_table1, format_table1, tracking_reduction_vs_hma


def test_table1_costs(benchmark, results_dir):
    rows = benchmark.pedantic(compute_table1, rounds=1, iterations=1)
    emit(results_dir, "table1_costs", format_table1(rows))

    by_name = {row.mechanism: row for row in rows}

    # MEA: 736 bytes across the four pods, exactly as the paper sizes it.
    assert by_name["MemPod"].tracking_bytes == 736

    # HMA: 16-bit counter per page of the 9 GB space = 9 MB.
    assert by_name["HMA"].tracking_bytes == 9 * 1024 * 1024
    assert by_name["HMA"].remap_bytes == 0  # the OS owns translation

    # THM: 8-bit competing counter per fast page = 512 kB.
    assert by_name["THM"].tracking_bytes == 512 * 1024

    # CAMEO: no activity tracking at all (event-triggered).
    assert by_name["CAMEO"].tracking_bytes == 0

    # Headline reduction factors.
    assert 12000 < tracking_reduction_vs_hma(rows) < 13500
    assert by_name["THM"].tracking_bytes / by_name["MemPod"].tracking_bytes > 700
