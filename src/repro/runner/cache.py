"""Content-addressed on-disk cache for sweep-cell results.

Every sweep cell is a pure function of its inputs: the experiment
sizing (scale / length / seed), the workload name, the mechanism kind
and parameters, the machine geometry, and the code itself.  The cache
therefore keys each result by a SHA-256 fingerprint over exactly those
inputs — one JSON file per cell under ``REPRO_CACHE_DIR`` (default
``~/.cache/repro``) — and rehydrates the stored dataclass on a hit.

Invalidation is purely key-based: change *any* fingerprint input and
the old entry is simply never looked up again.  The code-version token
is a digest over every ``.py`` file in the :mod:`repro` package, so
editing any source file cold-starts the cache rather than serving
results computed by different code.  Corrupt or truncated entries read
as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..system.stats import SimulationResult
from ..tracking.oracle import OracleResult

CACHE_ENV_VAR = "REPRO_CACHE_DIR"

#: result dataclasses the cache knows how to store and rehydrate
RESULT_TYPES = {
    "simulation": SimulationResult,
    "oracle": OracleResult,
}

CacheableResult = Union[SimulationResult, OracleResult]


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


@lru_cache(maxsize=1)
def code_version_token() -> str:
    """Digest of every source file in the :mod:`repro` package.

    Part of every cache key: any source edit (new mechanism behaviour,
    timing tweak, bugfix) yields a new token, so stale results computed
    by older code are never served.  Computed once per process.
    """
    root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def fingerprint(payload: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON rendering of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def result_type_name(result: CacheableResult) -> str:
    """The registry tag for a result instance."""
    for name, cls in RESULT_TYPES.items():
        if isinstance(result, cls):
            return name
    raise TypeError(f"uncacheable result type: {type(result).__name__}")


class ResultCache:
    """One JSON file per cell, addressed by fingerprint.

    Writes are atomic (write-then-rename), so concurrent workers and
    concurrent sweep processes sharing one cache directory can only
    ever race to write identical bytes.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        """Where entry ``key`` lives (two-level fan-out keeps dirs small)."""
        return self.root / key[:2] / f"{key[2:]}.json"

    def load(self, key: str) -> Optional[CacheableResult]:
        """Rehydrate the stored result, or ``None`` on any kind of miss."""
        try:
            payload = json.loads(self.path_for(key).read_text(encoding="utf-8"))
            cls = RESULT_TYPES[payload["type"]]
            return cls(**payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(self, key: str, result: CacheableResult) -> None:
        """Persist ``result`` under ``key`` atomically."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"type": result_type_name(result), "result": asdict(result)}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        finally:
            # After a successful replace the temp name is gone; on any
            # failure this reclaims it.  Either way nothing is swallowed.
            try:
                os.unlink(tmp)
            except OSError:
                pass
