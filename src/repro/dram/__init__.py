"""Event-driven DRAM timing substrate (the Ramulator replacement).

Public surface:

* :class:`DramTiming` and the Table 2 presets,
* :class:`AddressMapper` / :class:`DecodedAddress`,
* :class:`Bank` with row-buffer outcomes,
* :class:`ChannelController` (bounded FR-FCFS),
* :class:`MemoryDevice` plus the ``hbm_device`` / ``ddr4_device`` /
  overclocked factory functions,
* :class:`MemoryRequest` and the request-kind constants.
"""

from .address import AddressMapper, DecodedAddress
from .bank import Bank, OUTCOME_NAMES, ROW_CLOSED, ROW_CONFLICT, ROW_HIT
from .controller import REQUEST_BYTES, ChannelController, ControllerStats
from .devices import (
    DDR4_1600_TIMING,
    DDR4_2400_TIMING,
    HBM_OVERCLOCKED_TIMING,
    HBM_TIMING,
    ROW_BYTES,
    MemoryDevice,
    ddr4_device,
    ddr4_only_device,
    hbm_device,
    hbm_only_device,
)
from .request import BOOKKEEPING, DEMAND, KIND_NAMES, MIGRATION, MemoryRequest
from .timing import DramTiming

__all__ = [
    "AddressMapper",
    "BOOKKEEPING",
    "Bank",
    "ChannelController",
    "ControllerStats",
    "DDR4_1600_TIMING",
    "DDR4_2400_TIMING",
    "DEMAND",
    "DecodedAddress",
    "DramTiming",
    "HBM_OVERCLOCKED_TIMING",
    "HBM_TIMING",
    "KIND_NAMES",
    "MIGRATION",
    "MemoryDevice",
    "MemoryRequest",
    "OUTCOME_NAMES",
    "REQUEST_BYTES",
    "ROW_BYTES",
    "ROW_CLOSED",
    "ROW_CONFLICT",
    "ROW_HIT",
    "ddr4_device",
    "ddr4_only_device",
    "hbm_device",
    "hbm_only_device",
]
