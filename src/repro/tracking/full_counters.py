"""Full-Counters tracker: one access counter per memory page.

This is the HMA-style scheme the paper compares MEA against: perfect
*counting* (every access is tallied) at linear storage cost, followed by
an expensive sort to extract the ranking.  Its prediction weakness —
counting perfectly over the *past* says little about the *future* under
streaming or phase churn — is exactly what Figures 2 and 3 demonstrate.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence

from ..common.config import require_positive_int
from .base import ActivityTracker

try:  # optional accelerator; record_batch has a pure-Python twin
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

#: Below this many records the numpy set-up cost exceeds the loop.
_BATCH_MIN = 32


class FullCountersTracker(ActivityTracker):
    """Exact per-page access counting over one interval.

    Parameters
    ----------
    total_pages:
        Number of pages the hardware would dedicate a counter to
        (storage-cost denominator; the Python dict only materialises
        touched pages).
    counter_bits:
        Hardware counter width (paper's HMA uses 16 bits/page -> 9 MB).
    """

    def __init__(self, total_pages: int, counter_bits: int = 16) -> None:
        require_positive_int("total_pages", total_pages)
        require_positive_int("counter_bits", counter_bits)
        self.total_pages = total_pages
        self.counter_bits = counter_bits
        self._max_count = (1 << counter_bits) - 1
        self._counts: Counter = Counter()

    def record(self, page: int) -> None:
        if self._counts[page] < self._max_count:
            self._counts[page] += 1

    def record_batch(self, pages: Sequence[int]) -> None:
        """Replay :meth:`record` over every page of ``pages``, in order.

        Saturating increments commute, so the batch collapses to one
        ``unique``/bincount pass: each touched page ends at
        ``min(max, current + occurrences)`` — identical to the
        per-record loop's final state.  The pure twin (used without
        numpy or for short batches) tallies through a local
        :class:`~collections.Counter` first for the same effect.
        """
        counts = self._counts
        max_count = self._max_count
        if _np is None or (
            len(pages) < _BATCH_MIN and not isinstance(pages, _np.ndarray)
        ):
            for page, occurrences in Counter(pages).items():
                current = counts[page]
                if current < max_count:
                    total = current + occurrences
                    counts[page] = total if total < max_count else max_count
            return
        uniq, occ = _np.unique(_np.asarray(pages, dtype=_np.int64), return_counts=True)
        for page, occurrences in zip(uniq.tolist(), occ.tolist()):
            current = counts[page]
            if current < max_count:
                total = current + occurrences
                counts[page] = total if total < max_count else max_count

    def hot_pages(self) -> List[int]:
        """All touched pages ranked by count (ties: lower page first)."""
        return [
            page
            for page, _ in sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        ]

    def top_pages(self, n: int) -> List[int]:
        """The ``n`` most-accessed pages of the interval."""
        return self.hot_pages()[:n]

    def counts(self) -> Dict[int, int]:
        """Snapshot of page -> exact count (copy; analysis support)."""
        return dict(self._counts)

    def pages_touched(self) -> int:
        """Distinct pages accessed this interval."""
        return len(self._counts)

    def reset(self) -> None:
        """Zero every counter (interval boundary)."""
        self._counts.clear()

    def storage_bits(self) -> int:
        """One counter per page: ``total_pages x counter_bits``."""
        return self.total_pages * self.counter_bits
