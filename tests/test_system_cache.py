"""Metadata cache: hit/miss behaviour, LRU, line grouping."""

import pytest

from repro.common.errors import ConfigError
from repro.system.cache import MetadataCache


class TestBasics:
    def test_first_access_misses(self):
        cache = MetadataCache(1024)
        assert cache.lookup(5) is False
        assert cache.misses == 1

    def test_second_access_hits(self):
        cache = MetadataCache(1024)
        cache.lookup(5)
        assert cache.lookup(5) is True
        assert cache.hits == 1

    def test_entries_share_lines(self):
        # 4-byte entries: 16 per 64 B line; adjacent keys hit together.
        cache = MetadataCache(1024, entry_bytes=4)
        cache.lookup(0)
        assert cache.lookup(15) is True  # same line
        assert cache.lookup(16) is False  # next line

    def test_entry_bytes_8(self):
        cache = MetadataCache(1024, entry_bytes=8)
        assert cache.entries_per_line == 8

    def test_miss_rate(self):
        cache = MetadataCache(1024)
        cache.lookup(0)
        cache.lookup(0)
        assert cache.miss_rate == pytest.approx(0.5)

    def test_contains_does_not_mutate(self):
        cache = MetadataCache(1024)
        assert cache.contains(0) is False
        assert cache.misses == 0
        cache.lookup(0)
        assert cache.contains(0) is True


class TestEviction:
    def test_lru_eviction_within_set(self):
        # One set, 2 ways: the least recently used line leaves.
        cache = MetadataCache(128, entry_bytes=64, associativity=2)
        assert cache.sets == 1
        cache.lookup(0)
        cache.lookup(1)
        cache.lookup(0)  # 0 is now MRU
        cache.lookup(2)  # evicts 1
        assert cache.contains(0)
        assert not cache.contains(1)
        assert cache.contains(2)

    def test_capacity_respected(self):
        cache = MetadataCache(2048, entry_bytes=64, associativity=4)
        lines = cache.sets * cache.associativity
        for key in range(lines * 3):
            cache.lookup(key)
        resident = sum(1 for key in range(lines * 3) if cache.contains(key))
        assert resident <= lines


class TestSizing:
    def test_paper_cache_sizes_construct(self):
        for kib in (16, 32, 64):
            cache = MetadataCache(kib * 1024)
            assert cache.effective_bytes <= kib * 1024
            assert cache.effective_bytes >= kib * 1024 // 2

    def test_rejects_sub_line_capacity(self):
        with pytest.raises(ConfigError):
            MetadataCache(32)

    def test_rejects_oversized_entry(self):
        with pytest.raises(ConfigError):
            MetadataCache(1024, entry_bytes=128)

    def test_reset_stats_keeps_contents(self):
        cache = MetadataCache(1024)
        cache.lookup(3)
        cache.reset_stats()
        assert cache.misses == 0
        assert cache.lookup(3) is True
