"""Opt-in fast replay kernels, bit-identical to the reference loop.

See :mod:`repro.kernel.replay` for the contract and the per-mechanism
specializations.  Select with ``kernel="fast"`` on
:func:`repro.system.simulator.simulate` (the default), the
``REPRO_KERNEL`` environment variable, or ``--kernel`` on the CLI.
"""

from .replay import fast_simulate

__all__ = ["fast_simulate"]
