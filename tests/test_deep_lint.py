"""Tests for the ``repro lint --deep`` checkers.

Every checker must fire on a seeded violation (proven-to-fire) and stay
silent on the shipped tree; the acceptance case deletes a real
``finally`` write-back from ``repro/kernel/replay.py`` and demands a
finding.
"""

import io
import json
from pathlib import Path

import pytest

from repro.analysis import cachekey as cachekey_mod
from repro.analysis import twins as twins_mod
from repro.analysis.cachekey import check_cache_keys
from repro.analysis.lint import (
    deep_findings,
    load_allowlist,
    package_root,
    run_lint,
)
from repro.analysis.twins import (
    TwinPair,
    check_twin_parity,
    load_twin_manifest,
    twin_fingerprints,
    write_twin_manifest,
)
from repro.analysis.writeback import check_writeback_source


def wb(source, path="repro/kernel/replay.py", **kwargs):
    return check_writeback_source(source, path, **kwargs)


class TestWritebackChecker:
    def test_fires_on_missing_writeback(self):
        findings = wb(
            "def f(mgr):\n"
            "    cur = mgr.pos\n"
            "    cur = cur + 1\n"
        )
        assert len(findings) == 1
        path, line, site, message = findings[0]
        assert site == "f"
        assert "never writes the value back" in message

    def test_fires_on_escaping_mutation(self):
        # The raising call between the mutation and the bare restore
        # opens an exceptional path that skips the write-back.
        findings = wb(
            "def f(mgr):\n"
            "    cur = mgr.pos\n"
            "    cur = cur + 1\n"
            "    check(mgr)\n"
            "    mgr.pos = cur\n"
        )
        assert len(findings) == 1
        assert "can reach the function exit" in findings[0][3]

    def test_clean_with_finally_restore(self):
        findings = wb(
            "def f(mgr):\n"
            "    cur = mgr.pos\n"
            "    try:\n"
            "        cur = cur + 1\n"
            "        check(mgr)\n"
            "    finally:\n"
            "        mgr.pos = cur\n"
        )
        assert findings == []

    def test_clean_on_readonly_hoist(self):
        findings = wb(
            "def f(mgr):\n"
            "    cur = mgr.pos\n"
            "    return cur + 1\n"
        )
        assert findings == []

    def test_loop_resave_is_not_a_hoist(self):
        # A per-iteration `local = obj.attr` read inside the loop body
        # tracks the attribute; it must not be treated as a hoist pair.
        findings = wb(
            "def f(mgr, items):\n"
            "    for item in items:\n"
            "        cur = mgr.pos\n"
            "        mgr.pos = step(cur, item)\n"
        )
        assert findings == []

    def test_inference_only_in_target_files(self):
        source = "def f(mgr):\n    cur = mgr.pos\n    cur = cur + 1\n"
        assert wb(source, path="repro/other/module.py") == []
        assert wb(source, path="repro/other/module.py", infer_pairs=True)

    def test_declared_contract_fires_on_escaping_set(self):
        findings = wb(
            "def f(engine, sink):\n"
            "    # hoists: engine.swap_sink\n"
            "    engine.swap_sink = sink\n"
            "    work(engine)\n",
            path="repro/other/module.py",
        )
        assert len(findings) == 1
        assert "can exit without a terminal restore" in findings[0][3]

    def test_declared_contract_clean_with_finally(self):
        findings = wb(
            "def f(engine, sink):\n"
            "    # hoists: engine.swap_sink\n"
            "    engine.swap_sink = sink\n"
            "    try:\n"
            "        work(engine)\n"
            "    finally:\n"
            "        engine.swap_sink = None\n",
            path="repro/other/module.py",
        )
        assert findings == []

    def test_stale_contract_fires(self):
        findings = wb(
            "def f(engine):\n"
            "    # hoists: engine.swap_sink\n"
            "    work(engine)\n",
            path="repro/other/module.py",
        )
        assert len(findings) == 1
        assert "stale" in findings[0][3]

    def test_shipped_targets_clean(self):
        base = package_root().parent
        for path in (
            "repro/kernel/replay.py",
            "repro/dram/controller.py",
        ):
            source = (base / path).read_text(encoding="utf-8")
            findings = wb(source, path)
            # the one allowlisted conservative case
            assert [
                (p, s) for p, _, s, _ in findings
            ] == (
                [("repro/dram/controller.py", "ChannelController._service_at")]
                if path.endswith("controller.py")
                else []
            )


class TestWritebackAcceptance:
    def test_deleting_finally_restore_fires(self):
        """The ISSUE acceptance case: drop the finally guard around
        ``manager._next_boundary_ps`` in replay.py -> lint must fail."""
        base = package_root().parent
        lines = (
            (base / "repro/kernel/replay.py")
            .read_text(encoding="utf-8")
            .splitlines(keepends=True)
        )
        deleted = False
        for i, line in enumerate(lines):
            if "finally:" not in line:
                continue
            for j in range(i + 1, min(i + 6, len(lines))):
                if "manager._next_boundary_ps = next_boundary" in lines[j]:
                    del lines[j]
                    deleted = True
                    break
            if deleted:
                break
        assert deleted, "expected a finally-resident boundary restore"
        findings = wb("".join(lines), "repro/kernel/replay.py")
        assert any("_next_boundary_ps" in f[3] for f in findings)


class TestTwinParity:
    def test_shipped_tree_clean(self):
        assert check_twin_parity() == []

    def test_manifest_round_trip(self, tmp_path):
        manifest = tmp_path / "twins.json"
        prints = twin_fingerprints()
        write_twin_manifest(prints, manifest)
        assert load_twin_manifest(manifest) == prints
        assert check_twin_parity(manifest_path=manifest) == []

    def test_drift_fires(self, tmp_path):
        manifest = tmp_path / "twins.json"
        prints = twin_fingerprints()
        side = "repro/kernel/replay.py::_replay_mempod"
        prints[side] = "stale-fingerprint"
        write_twin_manifest(prints, manifest)
        findings = check_twin_parity(manifest_path=manifest)
        assert len(findings) == 1
        assert findings[0][2] == "_replay_mempod"
        assert "changed since" in findings[0][3]

    def test_unacknowledged_side_fires(self, tmp_path):
        manifest = tmp_path / "twins.json"
        prints = twin_fingerprints()
        del prints["repro/kernel/replay.py::_replay_mempod_pure"]
        write_twin_manifest(prints, manifest)
        findings = check_twin_parity(manifest_path=manifest)
        assert len(findings) == 1
        assert "not in the twin manifest" in findings[0][3]

    def test_signature_mismatch_fires(self, tmp_path, monkeypatch):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "mod.py").write_text(
            "def fast(a, b):\n    return a + b\n\n"
            "def slow(a):\n    return a\n"
        )
        pair = TwinPair("demo", "repro/mod.py::fast", "repro/mod.py::slow")
        monkeypatch.setattr(twins_mod, "TWIN_PAIRS", (pair,))
        manifest = tmp_path / "twins.json"
        write_twin_manifest(twin_fingerprints(pkg), manifest)
        findings = check_twin_parity(pkg, manifest)
        assert len(findings) == 1
        assert "signature mismatch" in findings[0][3]

    def test_missing_side_fires(self, tmp_path, monkeypatch):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "mod.py").write_text("def fast(a):\n    return a\n")
        pair = TwinPair("demo", "repro/mod.py::fast", "repro/mod.py::gone")
        monkeypatch.setattr(twins_mod, "TWIN_PAIRS", (pair,))
        manifest = tmp_path / "twins.json"
        write_twin_manifest(twin_fingerprints(pkg), manifest)
        findings = check_twin_parity(pkg, manifest)
        assert any("is missing" in f[3] for f in findings)


class TestCacheKey:
    def test_shipped_tree_clean(self):
        assert check_cache_keys() == []

    def test_unaccounted_env_read_fires(self, monkeypatch):
        monkeypatch.delitem(cachekey_mod.ACCOUNTED_ENV, "REPRO_KERNEL")
        findings = check_cache_keys()
        assert any(
            f[0] == "repro/system/simulator.py"
            and "REPRO_KERNEL" in f[3]
            for f in findings
        )

    def test_unaccounted_mutable_global_fires(self, monkeypatch):
        monkeypatch.delitem(
            cachekey_mod.ACCOUNTED_GLOBALS,
            "repro/mechanisms/registry.py::_REGISTRY",
        )
        findings = check_cache_keys()
        assert any("_REGISTRY" in f[3] for f in findings)


class TestDeepLintIntegration:
    def test_shipped_tree_clean(self):
        assert deep_findings() == []

    def test_allowlist_gates_service_at(self):
        # Without the allowlist the conservative _service_at finding
        # surfaces -- proving both the checker and the gate are wired.
        findings = deep_findings(allowlist={})
        assert [(f.rule, f.path) for f in findings] == [
            ("hoist-writeback", "repro/dram/controller.py")
        ]

    def test_allowlist_entries_carry_reasons(self):
        allow = load_allowlist()
        key = "repro/dram/controller.py::ChannelController._service_at"
        assert allow["hoist-writeback"][key]
        for rule, entries in allow.items():
            for path, reason in entries.items():
                assert reason, f"allowlist entry {rule}:{path} lacks a reason"

    def test_legacy_string_entries_normalize(self, tmp_path):
        allow_file = tmp_path / "allow.json"
        allow_file.write_text(
            json.dumps(
                {
                    "wall-clock": [
                        "repro/old.py",
                        {"path": "repro/new.py", "reason": "because"},
                    ]
                }
            )
        )
        allow = load_allowlist(allow_file)
        assert allow == {
            "wall-clock": {"repro/old.py": "", "repro/new.py": "because"}
        }

    def test_run_lint_deep_clean(self):
        buf = io.StringIO()
        code = run_lint(deep=True, skip_annotations=True, stream=buf)
        assert code == 0
        out = buf.getvalue()
        assert "repro lint: clean" in out
        for rule in ("hoist-writeback", "twin-parity", "cache-key"):
            assert rule in out

    def test_run_lint_json_emits_json_lines(self, monkeypatch):
        # Seed a deep finding (un-account an env var) and demand pure
        # JSON-lines output: every line parses, no summary line.
        monkeypatch.delitem(cachekey_mod.ACCOUNTED_ENV, "REPRO_KERNEL")
        buf = io.StringIO()
        code = run_lint(deep=True, as_json=True, skip_annotations=True, stream=buf)
        assert code == 1
        lines = [l for l in buf.getvalue().splitlines() if l]
        assert lines
        for line in lines:
            payload = json.loads(line)
            assert set(payload) == {"rule", "path", "line", "message"}
        assert any(json.loads(l)["rule"] == "cache-key" for l in lines)

    def test_run_lint_json_clean_is_silent(self):
        buf = io.StringIO()
        code = run_lint(deep=True, as_json=True, skip_annotations=True, stream=buf)
        assert code == 0
        assert buf.getvalue() == ""

    def test_cli_accepts_deep_and_json_flags(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(["lint", "--deep", "--json"])
        assert args.deep and args.as_json
        args = _build_parser().parse_args(["lint"])
        assert not args.deep and not args.as_json
