"""Dataflow analyses over :mod:`repro.analysis.cfg` graphs.

Two layers:

* **def-use chains** (:func:`def_use_chains`) — classic reaching
  definitions over the statement-level CFG: for every ``(node, name)``
  use, the set of nodes whose definition of ``name`` can reach it.
  Exception edges participate (a definition "reaches" a handler through
  the edge its raising statement took), so chains stay sound on the
  paths the write-back checker cares about.
* **must-pass queries** — :func:`reaches_exit_avoiding` answers "can
  control flow from these nodes reach the function exit without passing
  through any of *those* nodes?", which is exactly the post-dominance
  question the write-back checker asks of a restore site, phrased as a
  plain reachability search; :func:`postdominators` computes the full
  post-dominator sets (used by the CFG test-suite to pin the builder's
  edge semantics).

The CFG over-approximates feasible paths, so a ``False`` from
:func:`reaches_exit_avoiding` is a proof; a ``True`` is a finding that
may, rarely, be a false positive to allowlist with a justification.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from .cfg import EXCEPTION, STMT, FunctionCFG, stmt_defs, stmt_uses

#: A definition: (node id, name).
Definition = Tuple[int, str]


def node_defs(cfg: FunctionCFG) -> Dict[int, Set[str]]:
    """Names defined per CFG node (empty for synthetic nodes)."""
    return {
        node.id: stmt_defs(node.stmt) if node.stmt is not None else set()
        for node in cfg.nodes.values()
    }


def node_uses(cfg: FunctionCFG) -> Dict[int, Set[str]]:
    """Names used per CFG node (empty for synthetic nodes)."""
    return {
        node.id: stmt_uses(node.stmt) if node.stmt is not None else set()
        for node in cfg.nodes.values()
    }


def reaching_definitions(cfg: FunctionCFG) -> Dict[int, FrozenSet[Definition]]:
    """IN set of reaching definitions per node (worklist fixpoint)."""
    defs = node_defs(cfg)
    in_sets: Dict[int, Set[Definition]] = {nid: set() for nid in cfg.nodes}
    work = deque(cfg.nodes)
    while work:
        nid = work.popleft()
        new_in: Set[Definition] = set()
        for src, _kind in cfg.pred.get(nid, ()):
            killed = defs[src]
            new_in.update(
                d for d in in_sets[src] if d[1] not in killed
            )
            new_in.update((src, name) for name in killed)
        if new_in != in_sets[nid]:
            in_sets[nid] = new_in
            for dst, _kind in cfg.succ.get(nid, ()):
                work.append(dst)
    return {nid: frozenset(s) for nid, s in in_sets.items()}


def def_use_chains(cfg: FunctionCFG) -> Dict[Tuple[int, str], Set[int]]:
    """``(use node, name) -> set of defining nodes`` over the CFG."""
    uses = node_uses(cfg)
    reaching = reaching_definitions(cfg)
    chains: Dict[Tuple[int, str], Set[int]] = {}
    for nid, used in uses.items():
        for name in used:
            chains[(nid, name)] = {
                d_node for d_node, d_name in reaching[nid] if d_name == name
            }
    return chains


def definitions_of(cfg: FunctionCFG, name: str) -> List[int]:
    """All nodes that (re)bind ``name``, in node-id order."""
    return sorted(
        node.id
        for node in cfg.nodes.values()
        if node.kind == STMT and name in stmt_defs(node.stmt)
    )


def reachable_from(cfg: FunctionCFG, starts: Iterable[int]) -> Set[int]:
    """Every node reachable from ``starts`` (following all edge kinds)."""
    seen: Set[int] = set()
    work = deque(starts)
    while work:
        nid = work.popleft()
        if nid in seen:
            continue
        seen.add(nid)
        for dst, _kind in cfg.succ.get(nid, ()):
            if dst not in seen:
                work.append(dst)
    return seen


def reaches_exit_avoiding(
    cfg: FunctionCFG,
    starts: Iterable[int],
    avoid: Iterable[int],
    *,
    drop_start_exception_edges: bool = False,
) -> bool:
    """Can flow reach the exit from ``starts`` without entering ``avoid``?

    ``avoid`` nodes are walls: the search never enters them, so a
    ``False`` proves every exit path passes through one of them.  With
    ``drop_start_exception_edges`` the *first* hop out of a start node
    ignores its own exception edges — the phrasing a mutation check
    needs, because a statement that raises mid-flight never completed
    its own mutation.
    """
    walls = set(avoid)
    seen: Set[int] = set()
    work: deque = deque()
    for start in starts:
        if start in walls:
            continue
        for dst, kind in cfg.succ.get(start, ()):
            if drop_start_exception_edges and kind == EXCEPTION:
                continue
            if dst not in walls:
                work.append(dst)
    while work:
        nid = work.popleft()
        if nid in seen:
            continue
        seen.add(nid)
        if nid == cfg.exit:
            return True
        for dst, _kind in cfg.succ.get(nid, ()):
            if dst not in walls and dst not in seen:
                work.append(dst)
    return False


def postdominators(cfg: FunctionCFG) -> Dict[int, Set[int]]:
    """Post-dominator sets: ``pdom[n]`` = nodes on *every* n-to-exit path.

    Iterative intersection over the reversed graph.  Nodes that cannot
    reach the exit (e.g. the body of ``while True`` with no break) keep
    the universal set — vacuously post-dominated, which is the
    convention the checkers want (no exit path means nothing to prove).
    """
    all_nodes = set(cfg.nodes)
    pdom: Dict[int, Set[int]] = {nid: set(all_nodes) for nid in cfg.nodes}
    pdom[cfg.exit] = {cfg.exit}
    changed = True
    while changed:
        changed = False
        for nid in cfg.nodes:
            if nid == cfg.exit:
                continue
            succs = [dst for dst, _ in cfg.succ.get(nid, ())]
            if not succs:
                continue
            new: Set[int] = set(all_nodes)
            for dst in succs:
                new &= pdom[dst]
            new.add(nid)
            if new != pdom[nid]:
                pdom[nid] = new
                changed = True
    return pdom
