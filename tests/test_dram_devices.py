"""Memory devices: presets, stats merging, channel routing."""

import pytest

from repro.common.units import gib
from repro.dram import (
    DDR4_1600_TIMING,
    HBM_TIMING,
    MemoryDevice,
    ddr4_device,
    hbm_device,
    hbm_only_device,
)
from repro.dram.request import DEMAND, MIGRATION


class TestPresets:
    def test_hbm_shape(self):
        device = hbm_device()
        assert device.capacity_bytes == gib(1)
        assert device.channels == 8
        assert device.mapper.banks_per_channel == 16

    def test_ddr4_shape(self):
        device = ddr4_device()
        assert device.capacity_bytes == gib(8)
        assert device.channels == 4

    def test_hbm_only_covers_9gb(self):
        device = hbm_only_device()
        assert device.capacity_bytes >= gib(9)


class TestAccessRouting:
    def test_access_returns_target_channel(self):
        device = hbm_device()
        channel = device.access(0, False, 0)
        assert channel == device.mapper.fast_decode(0)[0]

    def test_row_stripe_spreads_channels(self):
        device = hbm_device()
        per_channel = 8192 * 16
        touched = {device.access(i * per_channel, False, 0) for i in range(8)}
        assert touched == set(range(8))

    def test_flush_channel_targets_one(self):
        device = hbm_device()
        device.access(0, False, 1000)
        completion = device.flush_channel(0)
        assert completion > 1000
        # Other channels never saw traffic.
        assert device.controllers[1].stats.served == 0


class TestStats:
    def test_merged_stats_across_channels(self):
        device = hbm_device()
        per_channel = 8192 * 16
        for i in range(8):
            device.access(i * per_channel, i % 2 == 0, 0, kind=MIGRATION if i < 4 else DEMAND)
        device.flush()
        merged = device.merged_stats()
        assert merged.served == 8
        assert merged.count_by_kind[MIGRATION] == 4
        assert merged.count_by_kind[DEMAND] == 4

    def test_row_buffer_hit_rate_aggregates(self):
        device = hbm_device()
        for _ in range(4):
            device.access(0, False, 0)
        device.flush()
        assert device.row_buffer_hit_rate() == pytest.approx(0.75)

    def test_block_until_all_channels(self):
        device = hbm_device()
        device.block_until(10_000_000)
        for ctrl in device.controllers:
            assert ctrl.bus_free_ps >= 10_000_000


class TestCustomShape:
    def test_arbitrary_topology(self):
        device = MemoryDevice(
            name="tiny",
            timing=DDR4_1600_TIMING,
            capacity_bytes=1 << 24,  # 16 MiB
            channels=2,
            ranks=2,
            banks=8,
            row_bytes=4096,
        )
        assert device.mapper.banks_per_channel == 16
        device.access((1 << 24) - 64, True, 0)
        assert device.flush() > 0
