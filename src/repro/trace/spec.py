"""Behavioural stand-ins for the SPEC CPU2006 benchmarks.

The paper traces 17 SPEC2006 benchmarks with Sniper.  SPEC binaries,
reference inputs, and Sniper are all unavailable here, so each benchmark
is replaced by a :class:`BenchmarkProfile`: a synthetic access pattern
whose *memory-system behaviour* matches what the paper (and the SPEC
memory-characterisation literature) reports for that code:

* footprints are expressed as a fraction of fast-memory capacity so the
  defining relationship — does the working set fit in HBM? — survives
  machine scaling (libquantum's 8-copy working set fits; bwaves' does
  not),
* streaming codes (bwaves, libquantum, lbm) sweep monotonically, the
  regime where Full Counters fail to predict the future and MEA's
  recency bias wins (paper Section 3),
* cactus keeps a *stable* skewed hot set — the one workload where FC
  out-predicts MEA,
* xalanc/omnetpp/astar drift their hot sets (phase churn),
* mcf/gems are low-locality pointer chasers.

``intensity`` scales a profile's request rate around the paper's
system-wide average of 5,500 requests per 50 us interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..common.errors import ConfigError
from ..geometry import MemoryGeometry
from .synth import (
    AccessPattern,
    CompositePattern,
    HotColdPattern,
    StreamPattern,
    UniformPattern,
    WavefrontPattern,
    ZipfPattern,
)

PatternBuilder = Callable[[MemoryGeometry], AccessPattern]


@dataclass(frozen=True)
class BenchmarkProfile:
    """One benchmark's behavioural model.

    Attributes
    ----------
    name:
        SPEC shorthand used throughout the paper (e.g. ``"xalanc"``).
    description:
        One-line behavioural summary (what the pattern mimics and why).
    intensity:
        Request-rate multiplier relative to the workload average.
    build:
        Factory producing a fresh stateful pattern for one core.
    """

    name: str
    description: str
    intensity: float
    build: PatternBuilder

    def __post_init__(self) -> None:
        if self.intensity <= 0:
            raise ConfigError(f"intensity must be positive, got {self.intensity!r}")


def _pages(geometry: MemoryGeometry, fraction: float, minimum: int = 4) -> int:
    """A per-core footprint of ``fraction`` x fast capacity, floor-capped."""
    return max(minimum, round(geometry.fast_pages * fraction))


def _astar(g: MemoryGeometry) -> AccessPattern:
    return HotColdPattern(
        footprint_pages=_pages(g, 0.40),
        hot_pages=_pages(g, 0.005),
        hot_fraction=0.85,
        write_fraction=0.30,
        hot_alpha=1.15,
        rotate_period=300,
        rotate_step=5,
        drift_period=5000,
        drift_step=2,
    )


def _bwaves(g: MemoryGeometry) -> AccessPattern:
    return StreamPattern(
        footprint_pages=_pages(g, 1.50),
        write_fraction=0.25,
        revisit_fraction=0.04,
        revisit_lag_pages=8,
    )


def _bzip(g: MemoryGeometry) -> AccessPattern:
    return HotColdPattern(
        footprint_pages=_pages(g, 0.30),
        hot_pages=_pages(g, 0.006),
        hot_fraction=0.80,
        write_fraction=0.40,
        hot_alpha=1.20,
        rotate_period=350,
        rotate_step=5,
    )


def _cactus(g: MemoryGeometry) -> AccessPattern:
    # Stable Zipf ranking: the Full-Counters-friendly outlier.
    return ZipfPattern(
        footprint_pages=_pages(g, 0.50),
        alpha=1.30,
        write_fraction=0.30,
    )


def _dealii(g: MemoryGeometry) -> AccessPattern:
    return ZipfPattern(
        footprint_pages=_pages(g, 0.25),
        alpha=1.10,
        write_fraction=0.30,
    )


def _gcc(g: MemoryGeometry) -> AccessPattern:
    # Multi-phase: three disjoint hot regions visited in rotation.
    from .synth import PhasedPattern

    phases = [
        HotColdPattern(
            footprint_pages=_pages(g, 0.12),
            hot_pages=_pages(g, 0.004),
            hot_fraction=0.85,
            write_fraction=0.30,
            hot_alpha=1.10,
        )
        for _ in range(3)
    ]
    return PhasedPattern(phases, phase_length=10000)


def _gems(g: MemoryGeometry) -> AccessPattern:
    return UniformPattern(
        footprint_pages=_pages(g, 1.20),
        write_fraction=0.30,
    )


def _lbm(g: MemoryGeometry) -> AccessPattern:
    # Near-constant total work per page over a large set, delivered by a
    # slow wavefront whose per-page intensity peaks just before the
    # front leaves: the paper calls out that FC ranks finished pages
    # while MEA favours the still-ramping, in-progress ones.
    return WavefrontPattern(
        footprint_pages=_pages(g, 1.00),
        write_fraction=0.45,
        zone_pages=30,
        advance_period=60,
    )


def _leslie(g: MemoryGeometry) -> AccessPattern:
    return CompositePattern(
        parts=[
            StreamPattern(footprint_pages=_pages(g, 0.60), write_fraction=0.35),
            HotColdPattern(
                footprint_pages=_pages(g, 0.10),
                hot_pages=_pages(g, 0.004),
                hot_fraction=0.90,
                write_fraction=0.30,
                hot_alpha=1.10,
                rotate_period=400,
                rotate_step=5,
            ),
        ],
        weights=[0.6, 0.4],
    )


def _libquantum(g: MemoryGeometry) -> AccessPattern:
    # Eight copies together fit inside fast memory (0.02 * 8 = 0.16x),
    # and each copy wraps its footprint several times per run — so after
    # the first sweep the whole working set is migrated and resident.
    return StreamPattern(
        footprint_pages=_pages(g, 0.02),
        write_fraction=0.20,
        revisit_fraction=0.05,
        revisit_lag_pages=6,
    )


def _mcf(g: MemoryGeometry) -> AccessPattern:
    return CompositePattern(
        parts=[
            UniformPattern(footprint_pages=_pages(g, 1.00), write_fraction=0.30),
            HotColdPattern(
                footprint_pages=_pages(g, 0.05),
                hot_pages=_pages(g, 0.004),
                hot_fraction=0.95,
                write_fraction=0.30,
                hot_alpha=1.20,
                rotate_period=500,
                rotate_step=4,
            ),
        ],
        weights=[0.7, 0.3],
    )


def _milc(g: MemoryGeometry) -> AccessPattern:
    return CompositePattern(
        parts=[
            StreamPattern(footprint_pages=_pages(g, 0.50), write_fraction=0.35),
            UniformPattern(footprint_pages=_pages(g, 0.40), write_fraction=0.30),
        ],
        weights=[0.5, 0.5],
    )


def _omnetpp(g: MemoryGeometry) -> AccessPattern:
    return HotColdPattern(
        footprint_pages=_pages(g, 0.35),
        hot_pages=_pages(g, 0.004),
        hot_fraction=0.88,
        write_fraction=0.35,
        hot_alpha=1.10,
        rotate_period=400,
        rotate_step=6,
        drift_period=4000,
        drift_step=2,
    )


def _soplex(g: MemoryGeometry) -> AccessPattern:
    return CompositePattern(
        parts=[
            StreamPattern(footprint_pages=_pages(g, 0.40), write_fraction=0.30),
            ZipfPattern(
                footprint_pages=_pages(g, 0.10),
                alpha=1.1,
                write_fraction=0.30,
            ),
        ],
        weights=[0.5, 0.5],
    )


def _sphinx(g: MemoryGeometry) -> AccessPattern:
    return HotColdPattern(
        footprint_pages=_pages(g, 0.30),
        hot_pages=_pages(g, 0.005),
        hot_fraction=0.80,
        write_fraction=0.25,
        hot_alpha=0.95,
        rotate_period=500,
        rotate_step=5,
    )


def _xalanc(g: MemoryGeometry) -> AccessPattern:
    # Strongly skewed hot set that drifts every interval or so: the
    # regime where MEA's recency bias out-predicts exact counting.
    return HotColdPattern(
        footprint_pages=_pages(g, 0.45),
        hot_pages=_pages(g, 0.005),
        hot_fraction=0.90,
        write_fraction=0.30,
        hot_alpha=1.15,
        rotate_period=300,
        rotate_step=5,
        drift_period=3000,
        drift_step=2,
    )


def _zeusmp(g: MemoryGeometry) -> AccessPattern:
    return CompositePattern(
        parts=[
            StreamPattern(footprint_pages=_pages(g, 0.30), write_fraction=0.40),
            HotColdPattern(
                footprint_pages=_pages(g, 0.08),
                hot_pages=_pages(g, 0.004),
                hot_fraction=0.90,
                write_fraction=0.30,
                hot_alpha=1.15,
                rotate_period=500,
                rotate_step=5,
            ),
        ],
        weights=[0.55, 0.45],
    )

BENCHMARKS: Dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in [
        BenchmarkProfile("astar", "path-finding: skewed hot set with slow drift", 0.80, _astar),
        BenchmarkProfile("bwaves", "fluid dynamics: streams a footprint 12x fast memory", 1.20, _bwaves),
        BenchmarkProfile("bzip", "compression: compact hot set, write heavy", 0.90, _bzip),
        BenchmarkProfile("cactus", "relativity stencil: stable Zipf ranking (FC-friendly)", 0.90, _cactus),
        BenchmarkProfile("dealii", "FEM library: small stable skewed set", 0.85, _dealii),
        BenchmarkProfile("gcc", "compiler: three rotating phase regions", 0.95, _gcc),
        BenchmarkProfile("gems", "EM solver: near-uniform over a large set", 1.10, _gems),
        BenchmarkProfile("lbm", "lattice Boltzmann: constant work per page, large sweep", 1.15, _lbm),
        BenchmarkProfile("leslie", "combustion: stream plus resident hot structure", 1.00, _leslie),
        BenchmarkProfile("libquantum", "quantum sim: streaming set that fits in fast memory", 1.30, _libquantum),
        BenchmarkProfile("mcf", "network simplex: pointer chasing with a small hot core", 1.25, _mcf),
        BenchmarkProfile("milc", "lattice QCD: half stream, half random", 1.00, _milc),
        BenchmarkProfile("omnetpp", "discrete-event sim: drifting hot set", 0.90, _omnetpp),
        BenchmarkProfile("soplex", "LP solver: stream plus skewed basis accesses", 0.95, _soplex),
        BenchmarkProfile("sphinx", "speech recognition: flat Zipf", 0.85, _sphinx),
        BenchmarkProfile("xalanc", "XSLT: hot set drifting every interval (MEA-friendly)", 1.00, _xalanc),
        BenchmarkProfile("zeusmp", "astrophysics CFD: stream plus hot core", 1.00, _zeusmp),
    ]
}


def get_benchmark(name: str) -> BenchmarkProfile:
    """Look up a profile by SPEC shorthand, raising ConfigError if unknown."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise ConfigError(
            f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}"
        ) from None


def benchmark_names() -> List[str]:
    """All known SPEC shorthands, sorted."""
    return sorted(BENCHMARKS)
