"""Shared fixtures: keep the suite's trace store out of ~/.cache.

``trace_for`` now serves traces through the on-disk columnar store by
default, so without isolation the suite would read and write the
developer's real ``~/.cache/repro/traces``.  One session-scoped
directory keeps tests hermetic while still exercising the warm-reuse
path (later tests open the files earlier tests wrote).
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_trace_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("trace-store")
    previous = os.environ.get("REPRO_TRACE_DIR")
    os.environ["REPRO_TRACE_DIR"] = str(root)
    yield
    if previous is None:
        os.environ.pop("REPRO_TRACE_DIR", None)
    else:
        os.environ["REPRO_TRACE_DIR"] = previous
