"""Access-pattern primitives: bounds, structure, churn knobs."""

import pytest
from collections import Counter

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.trace.record import LINES_PER_PAGE
from repro.trace.synth import (
    CompositePattern,
    HotColdPattern,
    PhasedPattern,
    StreamPattern,
    UniformPattern,
    WavefrontPattern,
    ZipfPattern,
)


def rng():
    return DeterministicRng(5)


def pages_of(pattern, n, r=None):
    r = r or rng()
    return [pattern.next_access(r)[0] for _ in range(n)]


class TestBounds:
    @pytest.mark.parametrize(
        "pattern",
        [
            StreamPattern(100),
            UniformPattern(100),
            ZipfPattern(100),
            HotColdPattern(100, hot_pages=10),
            WavefrontPattern(100, zone_pages=10, advance_period=5),
            PhasedPattern([UniformPattern(30), UniformPattern(40)], phase_length=7),
            CompositePattern([UniformPattern(30), StreamPattern(20)], [1, 1]),
        ],
        ids=lambda p: type(p).__name__,
    )
    def test_pages_within_footprint(self, pattern):
        r = rng()
        for _ in range(2000):
            page, line, is_write = pattern.next_access(r)
            assert 0 <= page < pattern.footprint_pages
            assert 0 <= line < LINES_PER_PAGE
            assert isinstance(is_write, bool)


class TestStream:
    def test_sequential_lines_then_pages(self):
        pattern = StreamPattern(10, write_fraction=0.0, lines_per_visit=4)
        r = rng()
        accesses = [pattern.next_access(r) for _ in range(8)]
        assert [a[0] for a in accesses] == [0, 0, 0, 0, 1, 1, 1, 1]
        assert [a[1] for a in accesses[:4]] == [0, 1, 2, 3]

    def test_wraps_at_footprint(self):
        pattern = StreamPattern(3, write_fraction=0.0, lines_per_visit=1)
        assert pages_of(pattern, 6) == [0, 1, 2, 0, 1, 2]

    def test_stride(self):
        pattern = StreamPattern(8, write_fraction=0.0, lines_per_visit=1, stride_pages=2)
        assert pages_of(pattern, 4) == [0, 2, 4, 6]

    def test_revisits_land_behind_front(self):
        pattern = StreamPattern(
            5000, write_fraction=0.0, lines_per_visit=1,
            revisit_fraction=0.5, revisit_lag_pages=20,
        )
        r = rng()
        behind = 0
        for _ in range(2000):
            front = pattern._page  # front position when the access is drawn
            page, _, _ = pattern.next_access(r)
            distance = (front - page) % 5000
            assert distance <= 20
            if distance > 0:
                behind += 1
        assert behind > 500  # roughly half are revisits

    def test_write_fraction_respected(self):
        pattern = StreamPattern(100, write_fraction=0.4)
        r = rng()
        writes = sum(pattern.next_access(r)[2] for _ in range(5000))
        assert writes == pytest.approx(2000, rel=0.1)

    def test_revisit_requires_lag(self):
        with pytest.raises(ConfigError):
            StreamPattern(10, revisit_fraction=0.5, revisit_lag_pages=0)

    def test_lines_per_visit_capped(self):
        with pytest.raises(ConfigError):
            StreamPattern(10, lines_per_visit=LINES_PER_PAGE + 1)


class TestZipf:
    def test_head_dominates(self):
        pattern = ZipfPattern(200, alpha=1.3, shuffle=False)
        counts = Counter(pages_of(pattern, 10000))
        top = counts.most_common(1)[0][1]
        assert top > 10000 * 0.05

    def test_stable_ranking_without_drift(self):
        pattern = ZipfPattern(100, alpha=1.2, shuffle=False)
        first = Counter(pages_of(pattern, 5000, rng()))
        second = Counter(pages_of(pattern, 5000, rng()))
        # Same top page both halves (stability is the cactus trait).
        assert first.most_common(1)[0][0] == second.most_common(1)[0][0]

    def test_drift_moves_top_page(self):
        pattern = ZipfPattern(100, alpha=1.3, shuffle=False, drift_period=100, drift_step=10)
        r = rng()
        early = Counter(pages_of(pattern, 3000, r))
        late = Counter(pages_of(pattern, 3000, r))
        assert early.most_common(1)[0][0] != late.most_common(1)[0][0]

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ConfigError):
            ZipfPattern(100, alpha=0)


class TestHotCold:
    def test_hot_fraction_concentrates(self):
        pattern = HotColdPattern(1000, hot_pages=50, hot_fraction=0.9, hot_alpha=0)
        counts = Counter(pages_of(pattern, 10000))
        hot_hits = sum(v for k, v in counts.items() if k < 50)
        assert hot_hits == pytest.approx(9000, rel=0.05)

    def test_zipf_within_window(self):
        pattern = HotColdPattern(1000, hot_pages=50, hot_fraction=1.0, hot_alpha=1.3)
        counts = Counter(pages_of(pattern, 10000))
        assert counts[0] > counts[10] > counts.get(40, 0)

    def test_rotation_changes_top_but_not_set(self):
        pattern = HotColdPattern(
            1000, hot_pages=50, hot_fraction=1.0, hot_alpha=1.3,
            rotate_period=200, rotate_step=10,
        )
        r = rng()
        early = Counter(pages_of(pattern, 4000, r))
        late = Counter(pages_of(pattern, 4000, r))
        assert early.most_common(1)[0][0] != late.most_common(1)[0][0]
        # The *set* is unchanged: all accesses stay inside pages [0, 50).
        assert all(k < 50 for k in early)
        assert all(k < 50 for k in late)

    def test_drift_moves_window(self):
        pattern = HotColdPattern(
            1000, hot_pages=50, hot_fraction=1.0, hot_alpha=0,
            drift_period=10, drift_step=5,
        )
        pages = pages_of(pattern, 5000)
        assert max(pages) > 100  # window slid well past its start

    def test_hot_larger_than_footprint_rejected(self):
        with pytest.raises(ConfigError):
            HotColdPattern(10, hot_pages=20)


class TestWavefront:
    def test_zone_trails_front(self):
        pattern = WavefrontPattern(1000, zone_pages=30, advance_period=10)
        r = rng()
        for _ in range(3000):
            page, _, _ = pattern.next_access(r)
            front = pattern._front
            lag = (front - page) % 1000
            assert lag <= 30

    def test_leading_edge_hottest(self):
        # Density rises toward the leading (freshly reached) edge.
        pattern = WavefrontPattern(10_000, zone_pages=100, advance_period=10**9)
        counts = Counter(pages_of(pattern, 20000))
        front = pattern._front
        trailing = sum(counts.get((front - 100 + i) % 10_000, 0) for i in range(0, 20))
        leading = sum(counts.get((front - 100 + i) % 10_000, 0) for i in range(80, 100))
        assert leading > trailing * 2

    def test_zone_larger_than_footprint_rejected(self):
        with pytest.raises(ConfigError):
            WavefrontPattern(10, zone_pages=20)


class TestPhased:
    def test_phases_use_disjoint_regions(self):
        phases = [UniformPattern(10), UniformPattern(10), UniformPattern(10)]
        pattern = PhasedPattern(phases, phase_length=100)
        r = rng()
        first = {pattern.next_access(r)[0] for _ in range(100)}
        second = {pattern.next_access(r)[0] for _ in range(100)}
        assert first <= set(range(0, 10))
        assert second <= set(range(10, 20))

    def test_cycles_back_to_first_phase(self):
        pattern = PhasedPattern([UniformPattern(5), UniformPattern(5)], phase_length=10)
        r = rng()
        pages = [pattern.next_access(r)[0] for _ in range(25)]
        assert all(p < 5 for p in pages[20:25])

    def test_empty_phases_rejected(self):
        with pytest.raises(ConfigError):
            PhasedPattern([], phase_length=10)


class TestComposite:
    def test_weights_respected(self):
        pattern = CompositePattern(
            [UniformPattern(10), UniformPattern(10)], weights=[0.8, 0.2]
        )
        pages = pages_of(pattern, 10000)
        first_region = sum(1 for p in pages if p < 10)
        assert first_region == pytest.approx(8000, rel=0.1)

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ConfigError):
            CompositePattern([UniformPattern(10)], weights=[1, 2])

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ConfigError):
            CompositePattern([UniformPattern(10)], weights=[0])


class TestDeterminism:
    def test_same_seed_same_accesses(self):
        p1 = HotColdPattern(500, hot_pages=20, rotate_period=50, rotate_step=3)
        p2 = HotColdPattern(500, hot_pages=20, rotate_period=50, rotate_step=3)
        assert pages_of(p1, 1000, DeterministicRng(9)) == pages_of(p2, 1000, DeterministicRng(9))
