"""Differential suite: the fast kernel must equal the reference loop.

This is the contract that lets ``kernel="fast"`` be the default: for
every mechanism in ``MANAGER_KINDS``, across workloads, seeds, cache
configurations, and throttle settings, the fast kernel's
``SimulationResult`` must equal the reference loop's **field for
field** — not approximately, identically.  Any divergence is a kernel
bug by definition (the reference loop is the semantic spec).
"""

from dataclasses import asdict

import pytest

from repro.common.errors import AddressError
from repro.geometry import scaled_geometry
from repro.system.simulator import (
    MANAGER_KINDS,
    build_manager,
    reference_simulate,
    resolve_kernel,
    simulate,
)
from repro.trace import build_trace, get_workload
from repro.trace.record import Trace


@pytest.fixture(scope="module")
def geometry():
    return scaled_geometry(32)


def _trace(geometry, workload, length=6_000, seed=3):
    return build_trace(get_workload(workload), geometry, length=length, seed=seed).trace


def assert_kernels_agree(trace, geometry, kind, throttle_cap_ps=1_000_000, **params):
    reference = reference_simulate(
        trace, build_manager(kind, geometry, **params), throttle_cap_ps=throttle_cap_ps
    )
    fast = simulate(
        trace,
        build_manager(kind, geometry, **params),
        throttle_cap_ps=throttle_cap_ps,
        kernel="fast",
    )
    assert asdict(fast) == asdict(reference)


class TestEveryMechanism:
    @pytest.mark.parametrize("kind", MANAGER_KINDS)
    @pytest.mark.parametrize("workload", ["xalanc", "mix8"])
    def test_default_config(self, geometry, kind, workload):
        assert_kernels_agree(_trace(geometry, workload), geometry, kind)

    @pytest.mark.parametrize("kind", MANAGER_KINDS)
    def test_unthrottled(self, geometry, kind):
        assert_kernels_agree(
            _trace(geometry, "libquantum"), geometry, kind, throttle_cap_ps=0
        )

    @pytest.mark.parametrize("kind", MANAGER_KINDS)
    def test_second_seed(self, geometry, kind):
        assert_kernels_agree(
            _trace(geometry, "mix9", seed=17), geometry, kind
        )


class TestFallbackConfigurations:
    """Cache/predictor configs run through the reference fallback inside
    fast_simulate; equality must still hold end to end."""

    def test_mempod_with_remap_cache(self, geometry):
        assert_kernels_agree(
            _trace(geometry, "xalanc"), geometry, "mempod", cache_bytes=4096
        )

    def test_hma_stall_penalty_mode(self, geometry):
        assert_kernels_agree(
            _trace(geometry, "xalanc"), geometry, "hma", penalty_mode="stall"
        )

    def test_hma_with_counter_cache(self, geometry):
        assert_kernels_agree(
            _trace(geometry, "mix8"), geometry, "hma", cache_bytes=4096
        )

    def test_thm_with_srt_cache(self, geometry):
        assert_kernels_agree(
            _trace(geometry, "mix8"), geometry, "thm", cache_bytes=4096
        )

    def test_cameo_with_predictor(self, geometry):
        assert_kernels_agree(
            _trace(geometry, "xalanc"), geometry, "cameo", predictor_entries=64
        )

    def test_manager_subclass_falls_back(self, geometry):
        """A subclass may override anything; dispatch must not trust it."""
        from repro.kernel import replay
        from repro.managers.static import NoMigrationManager

        calls = []

        class Audited(NoMigrationManager):
            def handle(self, address, is_write, arrival_ps, core):
                calls.append(address)
                super().handle(address, is_write, arrival_ps, core)

        trace = _trace(geometry, "xalanc", length=500)
        memory = build_manager("tlm", geometry).memory
        result = replay.fast_simulate(trace, Audited(memory, geometry))
        assert len(calls) == len(trace)  # went through handle, not the kernel
        reference = reference_simulate(trace, build_manager("tlm", geometry))
        assert asdict(result) == asdict(reference)


class TestPurePythonTwins:
    """numpy is an accelerator, never a dependency: with it patched out,
    the comprehension-based plane/grouping twins must drive the batched
    datapath to the same bit-identical results.  (CI also runs this
    whole file on a numpy-free interpreter; these tests keep the twins
    covered on developer machines that do have numpy.)"""

    @pytest.fixture()
    def no_numpy(self, monkeypatch):
        import repro.kernel.replay
        import repro.trace.packed
        import repro.tracking.competing
        import repro.tracking.full_counters
        import repro.tracking.mea

        monkeypatch.setattr(repro.trace.packed, "_np", None)
        monkeypatch.setattr(repro.kernel.replay, "_np", None)
        # The tracker twins too: the no-numpy leg must cover
        # record_batch/access_batch falling back to their scalar loops.
        monkeypatch.setattr(repro.tracking.mea, "_np", None)
        monkeypatch.setattr(repro.tracking.competing, "_np", None)
        monkeypatch.setattr(repro.tracking.full_counters, "_np", None)

    @pytest.mark.parametrize("kind", ["tlm", "mempod", "thm", "hma", "hbm-only"])
    def test_without_numpy(self, geometry, kind, no_numpy):
        assert_kernels_agree(_trace(geometry, "mix8", length=3_000), geometry, kind)


class TestEdgeTraces:
    def test_empty_trace(self, geometry):
        trace = Trace(name="empty", records=[])
        assert_kernels_agree(trace, geometry, "mempod")

    def test_single_record(self, geometry):
        trace = Trace(name="one", records=[(0, 4096, 1, 0)])
        assert_kernels_agree(trace, geometry, "tlm")

    def test_boundary_heavy_trace(self, geometry):
        # Arrivals spanning many MemPod intervals, exercising the
        # boundary loop and the paced-swap queue from the kernel side.
        records = [(i * 3_000_000, (i * 8192) % (1 << 22), i % 2, 0) for i in range(512)]
        trace = Trace(name="sparse", records=records)
        for kind in ("mempod", "hma", "thm"):
            assert_kernels_agree(trace, geometry, kind)

    def test_boundaries_exactly_on_arrivals(self, geometry):
        # Records landing exactly *at* interval boundaries pin the
        # kernels' strict-vs-inclusive cut: the boundary fires before
        # the record arriving at the same picosecond (the reference
        # loop's _tick order).
        interval = build_manager("mempod", geometry).interval_ps
        records = []
        for k in range(1, 40):
            at = k * interval
            records.append((at, (k * 8192) % (1 << 22), k % 2, 0))
            records.append((at, (k * 4096) % (1 << 22), 0, 0))
            records.append((at + 1, (k * 2048) % (1 << 22), 1, 0))
        trace = Trace(name="on-boundary", records=records)
        for kind in ("mempod", "hma"):
            assert_kernels_agree(trace, geometry, kind)

    def test_empty_interval_slices(self, geometry):
        # Dense bursts separated by dozens of record-free intervals:
        # the interval engine must run every boundary (tracker resets,
        # paced swap drains) without any records in between, and equal
        # arrivals inside a burst must not split chunks incorrectly.
        interval = build_manager("mempod", geometry).interval_ps
        records = []
        for burst in range(6):
            base = burst * 40 * interval
            for i in range(64):
                at = base + (i // 4)  # runs of 4 equal arrivals
                records.append((at, ((burst * 64 + i) * 8192) % (1 << 22), i % 2, 0))
        trace = Trace(name="bursty", records=records)
        for kind in ("mempod", "hma", "thm"):
            assert_kernels_agree(trace, geometry, kind)

    def test_out_of_range_address_raises_identically(self, geometry):
        bad = Trace(
            name="bad", records=[(0, 0, 0, 0), (100, geometry.total_bytes + 64, 0, 0)]
        )
        with pytest.raises(AddressError):
            reference_simulate(bad, build_manager("tlm", geometry))
        with pytest.raises(AddressError):
            simulate(bad, build_manager("tlm", geometry), kernel="fast")


class TestKernelSelection:
    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel() == "fast"
        assert resolve_kernel("reference") == "reference"
        monkeypatch.setenv("REPRO_KERNEL", "reference")
        assert resolve_kernel() == "reference"
        assert resolve_kernel("fast") == "fast"  # explicit beats env

    def test_rejects_unknown_kernel(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            resolve_kernel("turbo")

    def test_sim_cell_records_ambient_kernel(self, monkeypatch):
        from repro.experiments.common import ExperimentConfig
        from repro.runner.pool import sim_cell

        config = ExperimentConfig(scale=64, length=100, seed=1)
        monkeypatch.setenv("REPRO_KERNEL", "reference")
        cell = sim_cell(config, "xalanc", "tlm")
        assert cell.kernel == "reference"
        assert cell.payload()["kernel"] == "reference"
        monkeypatch.delenv("REPRO_KERNEL")
        assert sim_cell(config, "xalanc", "tlm").kernel == "fast"


class TestDispatchReasons:
    """Dispatch is structural and observable, never exception-driven."""

    def _reason(self, geometry, kind, **params):
        from repro.kernel.replay import select_kernel

        return select_kernel(build_manager(kind, geometry, **params))[1]

    def test_specialised_reasons(self, geometry):
        assert self._reason(geometry, "tlm") == "specialised:tlm"
        assert self._reason(geometry, "mempod") == "specialised:mempod"
        assert self._reason(geometry, "hma") == "specialised:hma"
        assert self._reason(geometry, "thm") == "specialised:thm"
        assert self._reason(geometry, "cameo") == "specialised:cameo"
        assert self._reason(geometry, "hbm-only") == "specialised:single-level"

    def test_fallback_reasons(self, geometry):
        from repro.kernel.replay import select_kernel

        assert (
            self._reason(geometry, "mempod", cache_bytes=4096)
            == "fallback:metadata-cache"
        )
        assert (
            self._reason(geometry, "cameo", predictor_entries=64)
            == "fallback:predictor"
        )
        kernel, reason = select_kernel(build_manager("hma", geometry, cache_bytes=4096))
        assert kernel is None and reason == "fallback:metadata-cache"

    def test_subclass_reason_names_the_type(self, geometry):
        from repro.kernel.replay import select_kernel
        from repro.managers.static import NoMigrationManager

        class Audited(NoMigrationManager):
            pass

        memory = build_manager("tlm", geometry).memory
        kernel, reason = select_kernel(Audited(memory, geometry))
        assert kernel is None
        assert reason == "fallback:subclass:Audited"

    def test_last_dispatch_records_the_run(self, geometry):
        from repro.kernel import replay

        trace = _trace(geometry, "xalanc", length=300)
        replay.fast_simulate(trace, build_manager("tlm", geometry))
        assert replay.last_dispatch == "specialised:tlm"
        replay.fast_simulate(trace, build_manager("mempod", geometry, cache_bytes=4096))
        assert replay.last_dispatch == "fallback:metadata-cache"

    def test_last_dispatch_out_of_range(self, geometry):
        from repro.kernel import replay

        bad = Trace(
            name="bad", records=[(0, 0, 0, 0), (100, geometry.total_bytes + 64, 0, 0)]
        )
        with pytest.raises(AddressError):
            replay.fast_simulate(bad, build_manager("tlm", geometry))
        assert replay.last_dispatch == "fallback:out-of-range-address"

    def test_kernel_failure_propagates(self, geometry, monkeypatch):
        """A raising specialised kernel must NEVER be silently retried on
        the reference loop — that would hide kernel bugs from the
        differential suite."""
        from repro.kernel import replay

        calls = []

        def exploding(trace, packed, manager, throttle_cap_ps):
            calls.append(True)
            raise RuntimeError("kernel bug")

        monkeypatch.setattr(replay, "_replay_tlm", exploding)
        trace = _trace(geometry, "xalanc", length=100)
        with pytest.raises(RuntimeError, match="kernel bug"):
            replay.fast_simulate(trace, build_manager("tlm", geometry))
        assert calls == [True]
